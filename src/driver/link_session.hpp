// Per-link mutable selection state.
//
// One LinkSession is the user-space side of ONE AP-STA link: the probe
// subset policy, the adaptive probe-count controller, the optional path
// tracker, the RNG stream and the round counter -- everything that
// evolves as that link trains. The immutable heavy data (pattern table,
// response matrix, norm cache) stays behind the shared PatternAssets the
// session's selector rides, so a session is cheap enough to keep per user
// in a dense deployment. CssDaemon owns a map of these and routes each
// driver's sweeps to its session.
//
// Robustness extensions (the fault-injection campaign, common/fault.hpp):
// when the config carries a FaultPlan the session owns a LinkFaultInjector
// shared with its driver's firmware -- probe loss and reading corruption
// are applied to the drained sweep, and the sector-override installation
// can be dropped, retried with exponential backoff, and ultimately fail.
// When graceful degradation is enabled, every compressive selection is
// confidence-gated (CssResult::confidence, the peak-to-second-peak ratio
// of the Eq. 5 surface) and link health is tracked by the shared
// LinkLifecycle machine (core/link_state.hpp): unhealthy rounds -- a
// withheld low-confidence or underfilled estimate, a css-internal argmax
// fallback, an empty sweep, or a lost override install -- feed kFailure;
// repeated failures trip the machine into Acquisition, which the session
// serves as full SSW sweeps (one kAcquireRound per round) until the
// window drains and CSS is retried with a clean slate. Healthy rounds
// feed kHealthy, resetting the streak and the exponential re-entry
// backoff. in_fallback() is simply state() == kAcquisition.
#pragma once

#include <memory>
#include <optional>
#include <set>
#include <span>
#include <string>

#include "src/common/error.hpp"
#include "src/common/fault.hpp"
#include "src/core/adaptive.hpp"
#include "src/core/css.hpp"
#include "src/core/link_state.hpp"
#include "src/core/pattern_assets.hpp"
#include "src/core/selector.hpp"
#include "src/core/subset_policy.hpp"
#include "src/core/tracking.hpp"
#include "src/driver/wil6210.hpp"

namespace talon {

/// Confidence-gated CSS -> SSW degradation (see the state machine above).
struct DegradationConfig {
  bool enabled{false};
  /// Peak-to-second-peak ratio below which a compressive selection is
  /// distrusted: the estimate is reported but NOT installed -- the link
  /// keeps its current beam -- and the round counts toward the failure
  /// trip wire. Tuned on the conference-room campaign (bench_fault):
  /// genuine multipath keeps healthy ratios near 1.0, so the bar sits
  /// just above it; higher bars freeze the beam on rounds where the
  /// compressive pick was actually fine.
  double min_confidence{1.01};
  /// A sweep that returned fewer than this fraction of the requested
  /// probes under-determines Eq. 5 no matter how peaked the surface looks
  /// (cf. Fig. 9's collapse below ~8 probes): such rounds are withheld
  /// like low-confidence ones. This is what stops confidently-wrong
  /// selections from 1-2 surviving readings at extreme loss rates.
  double min_probe_fraction{0.5};
  /// Consecutive unhealthy rounds before the session abandons compressive
  /// probing and schedules full SSW sweeps.
  int max_consecutive_failures{2};
  /// Full-sweep rounds to run before giving CSS another chance. The
  /// window is long relative to the trip threshold so a persistently
  /// faulty link spends most rounds on the full sweep (bench_fault shows
  /// this is what converges to SSW quality at extreme loss).
  std::size_t recovery_rounds{6};
  /// Each fallback re-entry without an intervening healthy CSS round
  /// doubles the recovery window, up to recovery_rounds x this factor:
  /// under persistent faults the CSS retry duty-cycle decays towards
  /// zero and the link converges to full-sweep behaviour. A healthy
  /// round resets the window.
  std::size_t max_recovery_backoff{8};
};

/// Cumulative per-link degradation counters (bit-comparable across runs,
/// like FaultStats).
struct DegradationStats {
  std::uint64_t css_rounds{0};         ///< healthy compressive selections
  std::uint64_t failed_rounds{0};      ///< unhealthy CSS-mode rounds, any cause
  std::uint64_t low_confidence_events{0};
  std::uint64_t underfilled_rounds{0};  ///< sweeps below min_probe_fraction
  std::uint64_t fallback_entries{0};   ///< CSS -> full-sweep transitions
  std::uint64_t full_sweep_rounds{0};  ///< rounds served by the SSW fallback

  DegradationStats& operator+=(const DegradationStats& other);
  friend bool operator==(const DegradationStats&, const DegradationStats&) = default;
};

struct CssDaemonConfig {
  /// Fixed probe count when no adaptive controller is enabled.
  std::size_t probes{14};
  bool adaptive{false};
  AdaptiveProbeConfig adaptive_config{};
  /// Smooth the per-sweep direction estimates with a PathTracker and run
  /// Eq. 4 on the *tracked* direction (rejects one-off estimate jumps,
  /// re-locks on persistent path changes such as blockage).
  bool track_path{false};
  PathTrackerConfig tracker_config{};
  /// Fault plan for the robustness campaign; null (the default) injects
  /// nothing and leaves every hot path untouched.
  std::shared_ptr<const FaultPlan> faults{};
  /// Graceful CSS -> SSW degradation; disabled by default.
  DegradationConfig degradation{};
};

/// Complete serializable state of one LinkSession, captured between
/// rounds (never mid-sweep). Everything that influences future
/// selections is here -- the RNG stream, the adaptive controller, the
/// lifecycle machine with its mid-backoff acquisition window, the
/// tracker, the fault injector's cross-round state -- so a session
/// reconstructed with the same (assets, config, link id) and this state
/// produces byte-identical subsequent selections. The snapshot codec
/// (driver/snapshot.hpp) serializes it.
struct LinkSessionState {
  int link_id{0};
  std::uint64_t rounds{0};
  std::uint64_t dropped_probes{0};
  std::vector<int> warned_unknown;
  bool warn_cap_announced{false};
  std::string rng_state;
  AdaptiveProbeController::State controller;
  LinkLifecycle::State lifecycle;
  DegradationStats degradation;
  /// Present iff the session tracks a path (config.track_path).
  std::optional<PathTracker::State> tracker;
  /// Present iff the session owns a fault injector.
  std::optional<LinkFaultInjector::State> injector;
  /// Last sector override delivered (never set when none was yet).
  std::optional<int> last_installed_sector;

  friend bool operator==(const LinkSessionState&, const LinkSessionState&);
};

bool operator==(const LinkSessionState& a, const LinkSessionState& b);

class LinkSession {
 public:
  /// Binds to one driver (one chip). Loads the research patches when the
  /// firmware does not have them yet. `assets` is the shared immutable
  /// pattern data; the session only ever reads it. `link_id` keys this
  /// link's fault substreams (and diagnostics); the daemon passes the id
  /// it registered the session under.
  LinkSession(Wil6210Driver& driver, std::shared_ptr<const PatternAssets> assets,
              const CssDaemonConfig& config, Rng rng, int link_id = 0);

  /// Headless session: no chip behind it. Sweeps arrive as externally
  /// produced reports (process_report()/prepare_report()) and the
  /// selected sector is recorded in last_installed_sector() instead of
  /// being forced into a firmware. This is what lets a serving daemon
  /// hold tens of thousands of link sessions: a FullMacFirmware carries
  /// hundreds of kilobytes of chip memory per link, a headless session a
  /// few hundred bytes. Selection arithmetic is identical to the
  /// driver-backed mode.
  LinkSession(std::shared_ptr<const PatternAssets> assets,
              const CssDaemonConfig& config, Rng rng, int link_id = 0);

  /// Probe subset to use for this link's next training round: a policy
  /// draw of current_probes() sectors, or every transmit sector while the
  /// session is degraded to full-sweep mode.
  std::vector<int> next_probe_subset();

  /// Consume the just-finished round: read the ring buffer, apply the
  /// fault plan (if any), select -- compressively, or with the stock SSW
  /// argmax while degraded -- and install the sector override (with
  /// bounded retry under feedback faults). Returns the selection, or
  /// nullopt when nothing was decoded (the previous override stays).
  /// Exactly prepare_sweep() followed by complete_sweep(). Requires a
  /// driver-backed session.
  std::optional<CssResult> process_sweep();

  /// Consume one externally produced sweep report: identical to
  /// process_sweep() except the readings arrive from the caller instead
  /// of the driver's ring buffer. Works on headless AND driver-backed
  /// sessions (the serving daemon feeds both kinds the same way).
  std::optional<CssResult> process_report(std::vector<SectorReading> readings);

  // --- split-phase sweep processing (multi-link batched selection) ----------
  //
  // The daemon's batched path runs each round in two phases so that the
  // per-link work (ring-buffer drain, fault injection) can happen per
  // link while the selection itself is batched across links into ONE
  // CorrelationEngine::combined_argmax_batch walk. The sequence
  //   prepare_sweep(); complete_sweep(&batched_result_for_this_link);
  // is bit-identical to process_sweep() when the batched result equals
  // what this session's selector would have computed -- which
  // CssDaemon::process_sweeps() guarantees by batching only sessions
  // whose selection is the plain stateless CSS fast path.

  /// Phase 1: count the round, drain the ring buffer and apply reading
  /// faults; the sweep is parked until complete_sweep(). Returns true
  /// when the parked selection is BATCHABLE -- a plain compressive
  /// select with no per-link selector state (no tracking, no
  /// degradation gating, not a full-sweep fallback round, sweep
  /// non-empty) -- so the caller may compute it externally via
  /// css().select_batch() and hand it to complete_sweep().
  bool prepare_sweep();

  /// prepare_sweep() with caller-supplied readings instead of a ring
  /// drain (the report-driven ingest path). Same return contract.
  bool prepare_report(std::vector<SectorReading> readings);

  /// Phase 2: select -- from `batched` when given, else with this
  /// session's own selector -- then gate, install and account exactly
  /// like process_sweep(). Callers must pass `batched` only when
  /// prepare_sweep() returned true, and it must hold the CSS result for
  /// pending_readings().
  std::optional<CssResult> complete_sweep(const CssResult* batched = nullptr);

  /// The sweep parked by prepare_sweep() (valid until complete_sweep()).
  std::span<const SectorReading> pending_readings() const {
    return pending_readings_;
  }

  /// True between prepare_sweep() and complete_sweep().
  bool sweep_pending() const { return sweep_pending_; }

  /// Last prepare_sweep() verdict: may this round's selection be batched?
  bool pending_batchable() const { return pending_batchable_; }

  /// The stateless selector core (for the daemon's batched select).
  const CompressiveSectorSelector& css() const { return css_; }

  /// Number of sweeps processed on this link.
  std::size_t rounds() const { return rounds_; }

  /// Cumulative readings dropped because their sector ID has no slot in
  /// the shared pattern table (firmware reported a sector the codebook
  /// was never measured for). The counter is the source of truth; stderr
  /// warnings are capped at kMaxWarnedUnknownIds distinct IDs so a
  /// misconfigured codebook cannot flood the log from the sweep path.
  std::size_t dropped_probes() const { return dropped_probes_; }

  /// Distinct unknown sector IDs warned about so far (<= the cap).
  std::size_t warned_unknown_count() const { return warned_unknown_.size(); }

  /// Warn-once cap on distinct unknown sector IDs.
  static constexpr std::size_t kMaxWarnedUnknownIds = 16;

  std::size_t current_probes() const;

  /// The smoothed path direction (empty unless track_path is on and at
  /// least one valid estimate arrived).
  const std::optional<Direction>& tracked_direction() const;

  /// The shared assets this session's selector rides.
  const std::shared_ptr<const PatternAssets>& assets() const { return css_.assets(); }

  /// Swap this session onto a different (e.g. freshly recalibrated)
  /// assets generation. The selection strategy is REBUILT -- not merely
  /// repointed -- because the old strategy's workspace may cache a
  /// response panel keyed only by the probe-slot sequence, which would
  /// silently reuse gains from the previous table; tracker state is
  /// transplanted so the smoothed path survives the swap. Must be called
  /// between rounds (no sweep pending).
  void rebind_assets(std::shared_ptr<const PatternAssets> next);

  /// True when no chip sits behind this session (report-driven only).
  bool headless() const { return driver_ == nullptr; }

  /// The most recent sector override delivered (recorded in both modes;
  /// empty until the first install).
  const std::optional<int>& last_installed_sector() const {
    return last_installed_sector_;
  }

  Wil6210Driver& driver() {
    TALON_EXPECTS(driver_ != nullptr);
    return *driver_;
  }

  int link_id() const { return link_id_; }

  // --- snapshot/restore ------------------------------------------------------

  /// Capture the complete mutable state. Must be called between rounds
  /// (no sweep pending); with a fault injector attached this coincides
  /// with a round boundary, where the injector's category streams are a
  /// pure function of its round counter.
  LinkSessionState export_state() const;

  /// Restore state captured by export_state() on a session built with
  /// the same (assets, config). The state's link id must match this
  /// session's. Subsequent selections are byte-identical to the
  /// exporter's. Throws SnapshotError on a link-id or shape mismatch
  /// (e.g. tracker state for a non-tracking session).
  void import_state(const LinkSessionState& state);

  // --- robustness observability ---------------------------------------------

  /// True while the session is degraded to full SSW sweeps (the shared
  /// lifecycle machine is serving an Acquisition window).
  bool in_fallback() const {
    return lifecycle_.state() == LinkState::kAcquisition;
  }

  /// The lifecycle machine behind in_fallback(): state, transition
  /// counters and time-in-state aggregates (unit: rounds). Inert -- stays
  /// kUp with zero counters -- unless degradation is enabled.
  const LinkLifecycle& lifecycle() const { return lifecycle_; }

  const LifecycleStats& lifecycle_stats() const { return lifecycle_.stats(); }

  /// This link's fault counters (all zero when no plan is installed).
  FaultStats fault_stats() const {
    return injector_ ? injector_->stats() : FaultStats{};
  }

  const DegradationStats& degradation_stats() const { return degradation_stats_; }

  /// The injector shared with this link's firmware; null without a plan.
  const std::shared_ptr<LinkFaultInjector>& fault_injector() const {
    return injector_;
  }

 private:
  /// The shared ctor: a null driver makes a headless session.
  LinkSession(Wil6210Driver* driver, std::shared_ptr<const PatternAssets> assets,
              const CssDaemonConfig& config, Rng rng, int link_id);

  /// (Re)build strategy_/tracking_ over the current css_.
  void build_strategy();
  void note_unknown_sectors(std::span<const SectorReading> readings);
  /// Probe loss + reading corruption on the drained sweep, in order.
  void apply_reading_faults(std::vector<SectorReading>& readings);
  /// Install the override; bounded retry with exponential backoff under
  /// feedback faults. False when every attempt was lost.
  bool install_selection(int sector_id);
  /// Record the override and push it to the chip when one is attached.
  void deliver_selection(int sector_id);
  /// Advance the fault substreams and the degradation state machine.
  void finish_round(bool healthy, bool full_sweep_round);

  Wil6210Driver* driver_;
  CompressiveSectorSelector css_;
  CssDaemonConfig config_;
  RandomSubsetPolicy policy_;
  AdaptiveProbeController controller_;
  /// CssSelector, or TrackingCssSelector when track_path is on -- the
  /// session loop only ever talks to the strategy interface.
  std::unique_ptr<SectorSelector> strategy_;
  /// Non-null alias of strategy_ in tracking mode (for tracked()).
  TrackingCssSelector* tracking_{nullptr};
  /// The degradation target: the stock argmax over whatever was received.
  SswArgmaxSelector ssw_fallback_;
  Rng rng_;
  int link_id_{0};
  std::size_t rounds_{0};
  /// Sweep parked between prepare_sweep() and complete_sweep(). Member
  /// (not per-call) storage so the split-phase path stays allocation-free
  /// once warm, like the single-call path's local reuse.
  std::vector<SectorReading> pending_readings_;
  bool pending_full_sweep_{false};
  bool sweep_pending_{false};
  bool pending_batchable_{false};
  std::size_t dropped_probes_{0};
  /// Unknown sector IDs already warned about (warn once per ID, capped).
  std::set<int> warned_unknown_;
  bool warn_cap_announced_{false};
  std::shared_ptr<LinkFaultInjector> injector_;
  /// The Up/Unstable/Acquisition/Down machine replacing the old ad-hoc
  /// failure-streak/recovery-window/backoff counters. Sessions start Up
  /// (an associated link) and never see kIgnite/kDrop -- those belong to
  /// the mesh controller layer.
  LinkLifecycle lifecycle_;
  DegradationStats degradation_stats_;
  std::optional<int> last_installed_sector_;
};

}  // namespace talon
