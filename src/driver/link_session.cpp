#include "src/driver/link_session.hpp"

#include <iostream>

#include "src/antenna/codebook.hpp"

namespace talon {

LinkSession::LinkSession(Wil6210Driver& driver,
                         std::shared_ptr<const PatternAssets> assets,
                         const CssDaemonConfig& config, Rng rng)
    : driver_(&driver),
      css_(std::move(assets)),
      config_(config),
      controller_(config.adaptive_config),
      rng_(rng) {
  if (config_.track_path) {
    auto tracking = std::make_unique<TrackingCssSelector>(css_, config_.tracker_config);
    tracking_ = tracking.get();
    strategy_ = std::move(tracking);
  } else {
    strategy_ = std::make_unique<CssSelector>(css_);
  }
  if (!driver_->research_patches_loaded()) {
    driver_->load_research_patches();
  }
}

const std::optional<Direction>& LinkSession::tracked_direction() const {
  static const std::optional<Direction> kNone;
  return tracking_ ? tracking_->tracked() : kNone;
}

std::size_t LinkSession::current_probes() const {
  return config_.adaptive ? controller_.current_probes() : config_.probes;
}

std::vector<int> LinkSession::next_probe_subset() {
  return policy_.choose(talon_tx_sector_ids(), current_probes(), rng_);
}

void LinkSession::note_unknown_sectors(std::span<const SectorReading> readings) {
  const ResponseMatrix& matrix = css_.assets()->engine().response_matrix();
  for (const SectorReading& r : readings) {
    if (matrix.slot(r.sector_id) >= 0) continue;
    ++dropped_probes_;
    if (warned_unknown_.insert(r.sector_id).second) {
      std::cerr << "talon: link session: sweep reported sector "
                << r.sector_id
                << " with no measured pattern; its readings are dropped\n";
    }
  }
}

std::optional<CssResult> LinkSession::process_sweep() {
  ++rounds_;
  const std::vector<SectorReading> readings = driver_->read_sweep_readings();
  if (readings.empty()) return std::nullopt;
  note_unknown_sectors(readings);
  const CssResult result = strategy_->select(readings);
  if (!result.valid) return std::nullopt;
  driver_->force_sector(result.sector_id);
  if (config_.adaptive) controller_.report_selection(result.sector_id);
  return result;
}

}  // namespace talon
