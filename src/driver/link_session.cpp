#include "src/driver/link_session.hpp"

#include <iostream>
#include <utility>

#include "src/antenna/codebook.hpp"
#include "src/common/error.hpp"

namespace talon {

namespace {

CssConfig session_css_config(const CssDaemonConfig& config) {
  CssConfig css;
  // Confidence gating needs the full-surface peak-to-second-peak ratio;
  // without degradation the selector keeps the pruned argmax fast path.
  css.compute_confidence = config.degradation.enabled;
  return css;
}

LinkLifecycleConfig session_lifecycle_config(const DegradationConfig& d) {
  LinkLifecycleConfig lifecycle;
  lifecycle.max_consecutive_failures = d.max_consecutive_failures;
  lifecycle.recovery_rounds = d.recovery_rounds;
  lifecycle.max_recovery_backoff = d.max_recovery_backoff;
  return lifecycle;
}

}  // namespace

bool operator==(const LinkSessionState& a, const LinkSessionState& b) {
  auto lifecycle_eq = [](const LinkLifecycle::State& x,
                         const LinkLifecycle::State& y) {
    return x.state == y.state &&
           x.consecutive_failures == y.consecutive_failures &&
           x.window_left == y.window_left && x.backoff == y.backoff &&
           x.stats == y.stats;
  };
  auto controller_eq = [](const AdaptiveProbeController::State& x,
                          const AdaptiveProbeController::State& y) {
    return x.probes == y.probes && x.window == y.window &&
           x.previous_window_ids == y.previous_window_ids &&
           x.has_previous == y.has_previous;
  };
  auto tracker_eq = [](const std::optional<PathTracker::State>& x,
                       const std::optional<PathTracker::State>& y) {
    if (x.has_value() != y.has_value()) return false;
    if (!x) return true;
    return x->track == y->track && x->jump_candidate == y->jump_candidate &&
           x->jump_run == y->jump_run;
  };
  auto injector_eq = [](const std::optional<LinkFaultInjector::State>& x,
                        const std::optional<LinkFaultInjector::State>& y) {
    if (x.has_value() != y.has_value()) return false;
    if (!x) return true;
    return x->round == y->round && x->ge_bad == y->ge_bad &&
           x->stats == y->stats;
  };
  return a.link_id == b.link_id && a.rounds == b.rounds &&
         a.dropped_probes == b.dropped_probes &&
         a.warned_unknown == b.warned_unknown &&
         a.warn_cap_announced == b.warn_cap_announced &&
         a.rng_state == b.rng_state &&
         controller_eq(a.controller, b.controller) &&
         lifecycle_eq(a.lifecycle, b.lifecycle) &&
         a.degradation == b.degradation && tracker_eq(a.tracker, b.tracker) &&
         injector_eq(a.injector, b.injector) &&
         a.last_installed_sector == b.last_installed_sector;
}

DegradationStats& DegradationStats::operator+=(const DegradationStats& other) {
  css_rounds += other.css_rounds;
  failed_rounds += other.failed_rounds;
  low_confidence_events += other.low_confidence_events;
  underfilled_rounds += other.underfilled_rounds;
  fallback_entries += other.fallback_entries;
  full_sweep_rounds += other.full_sweep_rounds;
  return *this;
}

LinkSession::LinkSession(Wil6210Driver& driver,
                         std::shared_ptr<const PatternAssets> assets,
                         const CssDaemonConfig& config, Rng rng, int link_id)
    : LinkSession(&driver, std::move(assets), config, rng, link_id) {}

LinkSession::LinkSession(std::shared_ptr<const PatternAssets> assets,
                         const CssDaemonConfig& config, Rng rng, int link_id)
    : LinkSession(nullptr, std::move(assets), config, rng, link_id) {}

LinkSession::LinkSession(Wil6210Driver* driver,
                         std::shared_ptr<const PatternAssets> assets,
                         const CssDaemonConfig& config, Rng rng, int link_id)
    : driver_(driver),
      css_(std::move(assets), session_css_config(config)),
      config_(config),
      controller_(config.adaptive_config),
      rng_(rng),
      link_id_(link_id),
      lifecycle_(session_lifecycle_config(config.degradation), LinkState::kUp) {
  build_strategy();
  if (config_.faults && config_.faults->any_enabled()) {
    injector_ = std::make_shared<LinkFaultInjector>(config_.faults, link_id_);
    // The firmware draws the ring-buffer faults from the same injector, so
    // one (plan, link) pair fully determines the link's fault sequence.
    if (driver_ != nullptr) driver_->install_fault_injector(injector_);
  }
  if (driver_ != nullptr && !driver_->research_patches_loaded()) {
    driver_->load_research_patches();
  }
}

void LinkSession::build_strategy() {
  if (config_.track_path) {
    auto tracking = std::make_unique<TrackingCssSelector>(css_, config_.tracker_config);
    tracking_ = tracking.get();
    strategy_ = std::move(tracking);
  } else {
    tracking_ = nullptr;
    strategy_ = std::make_unique<CssSelector>(css_);
  }
}

void LinkSession::rebind_assets(std::shared_ptr<const PatternAssets> next) {
  TALON_EXPECTS(next != nullptr);
  TALON_EXPECTS(!sweep_pending_);
  if (next == css_.assets()) return;
  css_ = CompressiveSectorSelector(std::move(next), session_css_config(config_));
  // The strategy must be rebuilt, not repointed: its workspace may cache
  // a response panel keyed only by the probe-slot sequence, which a new
  // table with the same slots would silently alias. The tracker's path
  // state survives the swap.
  std::optional<PathTracker::State> track;
  if (tracking_ != nullptr) track = tracking_->tracker().export_state();
  build_strategy();
  if (tracking_ != nullptr && track) tracking_->tracker().import_state(*track);
}

const std::optional<Direction>& LinkSession::tracked_direction() const {
  static const std::optional<Direction> kNone;
  return tracking_ ? tracking_->tracked() : kNone;
}

std::size_t LinkSession::current_probes() const {
  return config_.adaptive ? controller_.current_probes() : config_.probes;
}

std::vector<int> LinkSession::next_probe_subset() {
  if (in_fallback()) {
    // Degraded: probe every transmit sector, like a stock SSW sweep. No
    // policy draw, so the CSS subset stream stays aligned for recovery.
    return talon_tx_sector_ids();
  }
  return policy_.choose(talon_tx_sector_ids(), current_probes(), rng_);
}

void LinkSession::note_unknown_sectors(std::span<const SectorReading> readings) {
  const ResponseMatrix& matrix = css_.assets()->engine().response_matrix();
  for (const SectorReading& r : readings) {
    if (matrix.slot(r.sector_id) >= 0) continue;
    ++dropped_probes_;
    if (warned_unknown_.contains(r.sector_id)) continue;
    if (warned_unknown_.size() >= kMaxWarnedUnknownIds) {
      if (!warn_cap_announced_) {
        warn_cap_announced_ = true;
        std::cerr << "talon: link session: over " << kMaxWarnedUnknownIds
                  << " distinct unknown sector IDs; suppressing further "
                     "warnings (dropped_probes() keeps counting)\n";
      }
      continue;
    }
    warned_unknown_.insert(r.sector_id);
    std::cerr << "talon: link session: sweep reported sector " << r.sector_id
              << " with no measured pattern; its readings are dropped\n";
  }
}

void LinkSession::apply_reading_faults(std::vector<SectorReading>& readings) {
  const FaultPlan& plan = injector_->plan();
  if (plan.loss.probability > 0.0 || plan.burst.enabled) {
    // In-order compaction: the Gilbert-Elliott chain must see the frames
    // in sweep order for bursts to mean consecutive probes.
    std::size_t out = 0;
    for (std::size_t i = 0; i < readings.size(); ++i) {
      if (!injector_->drop_probe()) readings[out++] = readings[i];
    }
    readings.resize(out);
  }
  const SignalCorruptionConfig& c = plan.corruption;
  if (c.snr_outlier_probability > 0.0 || c.rssi_outlier_probability > 0.0 ||
      c.floor_clamp_probability > 0.0) {
    for (SectorReading& r : readings) {
      injector_->corrupt_reading(r.snr_db, r.rssi_dbm);
    }
  }
}

void LinkSession::deliver_selection(int sector_id) {
  last_installed_sector_ = sector_id;
  if (driver_ != nullptr) driver_->force_sector(sector_id);
}

bool LinkSession::install_selection(int sector_id) {
  if (!injector_ || !injector_->plan().feedback.any()) {
    deliver_selection(sector_id);
    return true;
  }
  const FeedbackFaultConfig& fb = injector_->plan().feedback;
  for (int attempt = 0; attempt <= fb.max_retries; ++attempt) {
    if (attempt > 0) {
      injector_->note_feedback_retry(
          fb.backoff_base_us * static_cast<double>(1u << (attempt - 1)));
    }
    if (!injector_->drop_feedback_attempt()) {
      injector_->feedback_delay_us();
      deliver_selection(sector_id);
      return true;
    }
  }
  injector_->note_feedback_failure();
  return false;  // every attempt lost; the previous override stays
}

void LinkSession::finish_round(bool healthy, bool full_sweep_round) {
  if (injector_) injector_->next_round();
  if (!config_.degradation.enabled) return;
  // The round just served accrues in the state it was served IN (a
  // fallback round counts as Acquisition time even when it is the one
  // that drains the window).
  lifecycle_.advance(1.0);
  if (full_sweep_round) {
    ++degradation_stats_.full_sweep_rounds;
    lifecycle_.apply(LinkEvent::kAcquireRound);
    return;
  }
  if (healthy) {
    ++degradation_stats_.css_rounds;
    lifecycle_.apply(LinkEvent::kHealthy);
    return;
  }
  ++degradation_stats_.failed_rounds;
  const std::uint64_t trips_before = lifecycle_.stats().trips;
  lifecycle_.apply(LinkEvent::kFailure);
  if (lifecycle_.stats().trips != trips_before) {
    ++degradation_stats_.fallback_entries;
  }
}

std::optional<CssResult> LinkSession::process_sweep() {
  prepare_sweep();
  return complete_sweep();
}

std::optional<CssResult> LinkSession::process_report(
    std::vector<SectorReading> readings) {
  prepare_report(std::move(readings));
  return complete_sweep();
}

bool LinkSession::prepare_sweep() {
  TALON_EXPECTS(driver_ != nullptr);
  return prepare_report(driver_->read_sweep_readings());
}

bool LinkSession::prepare_report(std::vector<SectorReading> readings) {
  TALON_EXPECTS(!sweep_pending_);
  ++rounds_;
  pending_full_sweep_ = in_fallback();
  pending_readings_ = std::move(readings);
  if (injector_) apply_reading_faults(pending_readings_);
  sweep_pending_ = true;
  // Batchable iff complete_sweep() would run the plain stateless CSS
  // select: a tracked or degradation-gated selection depends on per-link
  // selector state the batched walk does not carry, a full-sweep round
  // uses the SSW argmax, and an empty sweep short-circuits before
  // selecting at all.
  pending_batchable_ = !pending_full_sweep_ && tracking_ == nullptr &&
                       !config_.degradation.enabled &&
                       !pending_readings_.empty();
  return pending_batchable_;
}

std::optional<CssResult> LinkSession::complete_sweep(const CssResult* batched) {
  TALON_EXPECTS(sweep_pending_);
  sweep_pending_ = false;
  const bool full_sweep_round = pending_full_sweep_;
  std::vector<SectorReading>& readings = pending_readings_;
  if (readings.empty()) {
    finish_round(/*healthy=*/false, full_sweep_round);
    return std::nullopt;
  }
  note_unknown_sectors(readings);
  TALON_EXPECTS(batched == nullptr || pending_batchable_);
  CssResult result = batched != nullptr ? *batched
                     : full_sweep_round ? ssw_fallback_.select(readings)
                                        : strategy_->select(readings);
  bool healthy = result.valid && !result.fallback_used;
  bool withhold = false;
  if (!full_sweep_round && config_.degradation.enabled && result.valid) {
    // Distrusted estimates are reported but NOT installed: the link keeps
    // its current beam -- the standing override, or the firmware's own
    // argmax when none was installed yet -- instead of being steered by a
    // guess. Repeats of this trip the full-sweep fallback. Two triggers:
    // a sweep that lost too many probes under-determines Eq. 5 (a sparse
    // surface can look confidently peaked while pointing anywhere -- and
    // the css-internal argmax over 1-2 survivors is no better, so this
    // guard applies to fallback_used results too), and a flat or
    // multi-modal surface fails the peak-to-second-peak bar.
    if (static_cast<double>(readings.size()) <
        config_.degradation.min_probe_fraction *
            static_cast<double>(current_probes())) {
      ++degradation_stats_.underfilled_rounds;
      healthy = false;
      withhold = true;
    } else if (healthy && result.confidence < config_.degradation.min_confidence) {
      ++degradation_stats_.low_confidence_events;
      healthy = false;
      withhold = true;
    }
  }
  if (!result.valid) {
    finish_round(/*healthy=*/false, full_sweep_round);
    return std::nullopt;
  }
  if (!withhold && !install_selection(result.sector_id)) healthy = false;
  if (config_.adaptive) controller_.report_selection(result.sector_id);
  finish_round(healthy, full_sweep_round);
  return result;
}

LinkSessionState LinkSession::export_state() const {
  TALON_EXPECTS(!sweep_pending_);
  LinkSessionState state;
  state.link_id = link_id_;
  state.rounds = rounds_;
  state.dropped_probes = dropped_probes_;
  state.warned_unknown.assign(warned_unknown_.begin(), warned_unknown_.end());
  state.warn_cap_announced = warn_cap_announced_;
  state.rng_state = rng_.save_state();
  state.controller = controller_.export_state();
  state.lifecycle = lifecycle_.export_state();
  state.degradation = degradation_stats_;
  if (tracking_ != nullptr) state.tracker = tracking_->tracker().export_state();
  if (injector_ != nullptr) state.injector = injector_->export_state();
  state.last_installed_sector = last_installed_sector_;
  return state;
}

void LinkSession::import_state(const LinkSessionState& state) {
  TALON_EXPECTS(!sweep_pending_);
  if (state.link_id != link_id_) {
    throw SnapshotError("snapshot state for link " +
                        std::to_string(state.link_id) +
                        " imported into session for link " +
                        std::to_string(link_id_));
  }
  if (state.tracker.has_value() != (tracking_ != nullptr)) {
    throw SnapshotError(
        "snapshot tracker state does not match the session's track_path "
        "configuration");
  }
  if (state.injector.has_value() != (injector_ != nullptr)) {
    throw SnapshotError(
        "snapshot fault-injector state does not match the session's fault "
        "plan");
  }
  rounds_ = state.rounds;
  dropped_probes_ = state.dropped_probes;
  warned_unknown_.clear();
  warned_unknown_.insert(state.warned_unknown.begin(),
                         state.warned_unknown.end());
  warn_cap_announced_ = state.warn_cap_announced;
  rng_.restore_state(state.rng_state);
  controller_.import_state(state.controller);
  lifecycle_.import_state(state.lifecycle);
  degradation_stats_ = state.degradation;
  if (tracking_ != nullptr) tracking_->tracker().import_state(*state.tracker);
  if (injector_ != nullptr) injector_->import_state(*state.injector);
  last_installed_sector_ = state.last_installed_sector;
}

}  // namespace talon
