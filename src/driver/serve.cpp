#include "src/driver/serve.hpp"

#include <chrono>

#include "src/common/error.hpp"
#include "src/common/parallel.hpp"

namespace talon {
namespace {

std::uint64_t steady_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::string link_label(int link_id) {
  return "link=\"" + std::to_string(link_id) + "\"";
}

}  // namespace

ServeDaemon::ServeDaemon(std::shared_ptr<const PatternAssets> assets,
                         CssDaemonConfig session_defaults, ServeConfig config)
    : daemon_(assets, session_defaults),
      session_defaults_(session_defaults),
      config_(config),
      epoch_(std::move(assets)),
      queue_(config.queue_capacity) {}

ServeDaemon::~ServeDaemon() { stop(); }

LinkSession& ServeDaemon::add_link(int link_id, Rng rng) {
  return add_link(link_id, rng, session_defaults_);
}

LinkSession& ServeDaemon::add_link(int link_id, Rng rng,
                                   const CssDaemonConfig& config) {
  if (running()) {
    throw StateError("add_link requires a stopped consumer");
  }
  // Register against the CURRENT assets generation so links added after
  // a hot swap never start on a retired table.
  LinkSession& session =
      daemon_.add_headless_link(link_id, rng, config, epoch_.current());
  claims_.emplace(link_id, std::make_unique<std::atomic<std::uint64_t>>(0));
  LinkIngest& ingest = ingest_[link_id];
  ingest.link_id = link_id;
  return session;
}

void ServeDaemon::enqueue(SweepReport report) {
  auto it = claims_.find(report.link_id);
  if (it == claims_.end()) {
    throw StateError("no serving session for link id " +
                     std::to_string(report.link_id));
  }
  // Claim the per-link FIFO ticket, then push until the queue takes it.
  // The claim-before-push order is what the consumer's reorder buffer
  // relies on: every claimed ticket is eventually pushed, so a gap in
  // the arrival order is always transient.
  report.seq = it->second->fetch_add(1, std::memory_order_relaxed);
  if (config_.measure_latency) report.submit_ns = steady_now_ns();
  while (!queue_.try_push(report)) {
    std::this_thread::yield();
  }
  submitted_.fetch_add(1, std::memory_order_relaxed);
}

bool ServeDaemon::try_submit(int link_id, std::vector<SectorReading> readings) {
  // The fullness probe runs BEFORE the ticket claim: once claimed, the
  // push must complete (see enqueue), so rejection must happen here.
  // approx_size is a snapshot -- a racing burst can still force enqueue
  // to spin briefly -- but a full queue is reliably rejected.
  if (queue_.approx_size() >= queue_.capacity()) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  SweepReport report;
  report.link_id = link_id;
  report.readings = std::move(readings);
  enqueue(std::move(report));
  return true;
}

void ServeDaemon::submit(int link_id, std::vector<SectorReading> readings) {
  SweepReport report;
  report.link_id = link_id;
  report.readings = std::move(readings);
  enqueue(std::move(report));
}

void ServeDaemon::route(SweepReport report) {
  auto it = ingest_.find(report.link_id);
  TALON_EXPECTS(it != ingest_.end());
  LinkIngest& ingest = it->second;
  if (report.seq != ingest.next_seq) {
    // Arrived ahead of a ticket still being pushed; hold it back.
    ingest.stash.emplace(report.seq, std::move(report));
    return;
  }
  ingest.ready.push_back(std::move(report));
  ++ingest.next_seq;
  // Release any successors the stash was holding.
  for (auto next = ingest.stash.find(ingest.next_seq);
       next != ingest.stash.end();
       next = ingest.stash.find(ingest.next_seq)) {
    ingest.ready.push_back(std::move(next->second));
    ingest.stash.erase(next);
    ++ingest.next_seq;
  }
  if (!ingest.in_cycle) {
    ingest.in_cycle = true;
    cycle_links_.push_back(&ingest);
  }
}

void ServeDaemon::process_link(LinkIngest& ingest) {
  LinkSession& session = daemon_.session(ingest.link_id);
  {
    // Epoch-pinned staleness check: a raw pointer compare against the
    // pinned current generation. Rebinding takes the slow path once per
    // swap per link; every other round costs two loads.
    AssetsEpoch::ReadGuard guard = epoch_.read();
    if (guard.get() != session.assets().get()) {
      session.rebind_assets(epoch_.current());
      rebinds_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  LatencyHistogram* latency =
      config_.measure_latency
          ? &telemetry_.histogram("serve_selection_latency_us")
          : nullptr;
  for (SweepReport& report : ingest.ready) {
    session.process_report(std::move(report.readings));
    processed_.fetch_add(1, std::memory_order_relaxed);
    if (latency != nullptr && report.submit_ns != 0) {
      const std::uint64_t now = steady_now_ns();
      const std::uint64_t delta_ns =
          now > report.submit_ns ? now - report.submit_ns : 0;
      latency->observe_us(delta_ns / 1000);
    }
  }
  ingest.ready.clear();
  ingest.in_cycle = false;
}

std::size_t ServeDaemon::drain_cycle() {
  cycle_links_.clear();
  SweepReport report;
  std::size_t popped = 0;
  while (popped < config_.drain_batch && queue_.try_pop(report)) {
    ++popped;
    route(std::move(report));
  }
  if (!cycle_links_.empty()) {
    std::lock_guard<std::mutex> lock(cycle_mutex_);
    drain_cycles_.fetch_add(1, std::memory_order_relaxed);
    // Fan the cycle's links over the worker pool. Each link is owned by
    // exactly one index, its reports already in ticket order, so the
    // outcome is independent of the thread count.
    parallel_for(
        cycle_links_.size(),
        [this](std::size_t i) { process_link(*cycle_links_[i]); },
        ParallelOptions{.threads = config_.threads});
  }
  return popped;
}

void ServeDaemon::run_consumer() {
  while (!stop_requested_.load(std::memory_order_acquire)) {
    if (drain_cycle() == 0) {
      // Idle: brief sleep instead of a busy spin. Latency floor ~50us,
      // well under one bucket of the latency histogram's working range.
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
  }
  // Stop processes everything already accepted: drain until dry.
  while (drain_cycle() != 0) {
  }
}

void ServeDaemon::start() {
  if (running()) return;
  stop_requested_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  consumer_ = std::thread([this] { run_consumer(); });
}

void ServeDaemon::stop() {
  if (!running()) return;
  stop_requested_.store(true, std::memory_order_release);
  consumer_.join();
  running_.store(false, std::memory_order_release);
}

std::size_t ServeDaemon::drain_all() {
  if (running()) {
    throw StateError("drain_all requires a stopped consumer");
  }
  const std::uint64_t before = processed();
  while (drain_cycle() != 0) {
  }
  return static_cast<std::size_t>(processed() - before);
}

void ServeDaemon::swap_assets(std::shared_ptr<const PatternAssets> next) {
  epoch_.swap(std::move(next));
  telemetry_.counter("serve_assets_swaps_total").inc();
}

void ServeDaemon::publish_session_metrics() {
  // Ingest-path counters (mirrors of the daemon's atomics, so one scrape
  // carries everything).
  telemetry_.counter("serve_reports_submitted_total").set(submitted());
  telemetry_.counter("serve_reports_processed_total").set(processed());
  telemetry_.counter("serve_reports_rejected_total").set(rejected());
  telemetry_.counter("serve_assets_rebinds_total").set(rebinds());
  telemetry_.counter("serve_drain_cycles_total")
      .set(drain_cycles_.load(std::memory_order_relaxed));
  telemetry_.gauge("serve_queue_depth").set(static_cast<double>(queue_.approx_size()));
  telemetry_.gauge("serve_links").set(static_cast<double>(daemon_.session_count()));

  // Aggregate session state: selection rounds, the PR5 fault and
  // degradation counters, the PR7 lifecycle time-in-state aggregates.
  std::uint64_t rounds = 0;
  for (int id : daemon_.link_ids()) rounds += daemon_.session(id).rounds();
  telemetry_.counter("serve_rounds_total").set(rounds);

  const FaultStats faults = daemon_.total_fault_stats();
  telemetry_.counter("serve_fault_probes_lost_total").set(faults.probes_lost);
  telemetry_.counter("serve_fault_feedback_drops_total").set(faults.feedback_drops);
  telemetry_.counter("serve_fault_feedback_failures_total")
      .set(faults.feedback_failures);

  const DegradationStats degradation = daemon_.total_degradation_stats();
  telemetry_.counter("serve_degradation_css_rounds_total").set(degradation.css_rounds);
  telemetry_.counter("serve_degradation_failed_rounds_total")
      .set(degradation.failed_rounds);
  telemetry_.counter("serve_degradation_fallback_entries_total")
      .set(degradation.fallback_entries);
  telemetry_.counter("serve_degradation_full_sweep_rounds_total")
      .set(degradation.full_sweep_rounds);

  const LifecycleStats lifecycle = daemon_.total_lifecycle_stats();
  telemetry_.gauge("serve_lifecycle_time_in_state",
                   "state=\"up\"").set(lifecycle.up_time);
  telemetry_.gauge("serve_lifecycle_time_in_state",
                   "state=\"unstable\"").set(lifecycle.unstable_time);
  telemetry_.gauge("serve_lifecycle_time_in_state",
                   "state=\"acquisition\"").set(lifecycle.acquisition_time);
  telemetry_.gauge("serve_lifecycle_time_in_state",
                   "state=\"down\"").set(lifecycle.down_time);
  telemetry_.counter("serve_lifecycle_trips_total").set(lifecycle.trips);
  telemetry_.counter("serve_lifecycle_recoveries_total").set(lifecycle.recoveries);

  // PR4/PR8 panel-cache traffic of the current assets generation.
  const auto cache = daemon_.assets()->engine().response_matrix().cache_stats();
  telemetry_.counter("serve_panel_cache_hits_total").set(cache.hits);
  telemetry_.counter("serve_panel_cache_misses_total").set(cache.misses);
  const std::uint64_t lookups = cache.hits + cache.misses;
  telemetry_.gauge("serve_panel_cache_hit_rate")
      .set(lookups == 0 ? 0.0
                        : static_cast<double>(cache.hits) /
                              static_cast<double>(lookups));

  if (config_.per_link_metrics) {
    for (int id : daemon_.link_ids()) {
      const LinkSession& session = daemon_.session(id);
      const std::string label = link_label(id);
      telemetry_.counter("serve_link_rounds_total", label).set(session.rounds());
      telemetry_.gauge("serve_link_state", label)
          .set(static_cast<double>(
              static_cast<std::uint8_t>(session.lifecycle().state())));
      if (session.last_installed_sector()) {
        telemetry_.gauge("serve_link_sector", label)
            .set(static_cast<double>(*session.last_installed_sector()));
      }
    }
  }
}

std::string ServeDaemon::scrape() {
  // One lock serializes the session walk against the consumer's
  // processing phase; the counters themselves are atomics.
  std::lock_guard<std::mutex> lock(cycle_mutex_);
  publish_session_metrics();
  return telemetry_.render();
}

}  // namespace talon
