// The user-space selection service: what the paper's evaluation scripts do
// after every probing sweep (Sec. 6.1), packaged as a long-running
// component. One daemon serves MANY links: it holds the shared immutable
// PatternAssets once and owns a map of LinkSessions, each bound to one
// Wil6210Driver (one chip) and carrying only that link's mutable state
// (subset policy, adaptive controller, tracker, RNG, round counter).
// After each training round the owning session drains the sweep info
// through its driver, runs compressive selection on the shared assets,
// installs the result via the sector override, and optionally lets the
// adaptive controller pick the next round's probe count.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "src/core/pattern_assets.hpp"
#include "src/driver/link_session.hpp"
#include "src/driver/wil6210.hpp"

namespace talon {

class CssDaemon {
 public:
  /// Multi-link daemon over pre-built shared assets; add links with
  /// add_link(). `defaults` seeds the per-link config of sessions added
  /// without an explicit one.
  explicit CssDaemon(std::shared_ptr<const PatternAssets> assets,
                     CssDaemonConfig defaults = {});

  /// Single-link convenience (the original daemon shape): resolves the
  /// assets through the global registry -- daemons built from the same
  /// measured table share one response matrix -- and immediately binds
  /// `driver` as link 0. The session loads the research patches on
  /// construction when missing.
  CssDaemon(Wil6210Driver& driver, const PatternTable& patterns,
            const CssDaemonConfig& config, Rng rng);

  // --- session management ---------------------------------------------------

  /// Create and own the session serving `driver` under `link_id` with the
  /// daemon's default config. Throws StateError when the id is taken.
  LinkSession& add_link(int link_id, Wil6210Driver& driver, Rng rng);

  /// Same with a per-link config override.
  LinkSession& add_link(int link_id, Wil6210Driver& driver, Rng rng,
                        const CssDaemonConfig& config);

  /// Create and own a HEADLESS session (no chip; report-driven, see
  /// LinkSession's headless mode) under `link_id`. This is what the
  /// serving layer registers by the thousands.
  LinkSession& add_headless_link(int link_id, Rng rng);
  LinkSession& add_headless_link(int link_id, Rng rng,
                                 const CssDaemonConfig& config);

  /// Headless with per-link assets: the session rides `assets` instead
  /// of the daemon's shared table (a link measured against a different
  /// codebook, or mid-rollout of a recalibration). Such sessions never
  /// join the shared batched-selection walk -- complete_prepared()
  /// routes them through their own selector.
  LinkSession& add_headless_link(int link_id, Rng rng,
                                 const CssDaemonConfig& config,
                                 std::shared_ptr<const PatternAssets> assets);

  /// Feed one externally produced sweep report to `link_id`'s session
  /// (LinkSession::process_report). Throws StateError when absent.
  std::optional<CssResult> process_report(int link_id,
                                          std::vector<SectorReading> readings);

  /// The session serving `link_id`; throws StateError when absent.
  LinkSession& session(int link_id);
  const LinkSession& session(int link_id) const;

  bool has_session(int link_id) const;
  std::size_t session_count() const { return sessions_.size(); }

  /// Registered link ids, ascending (snapshot/serve iteration order).
  std::vector<int> link_ids() const;

  /// The immutable assets every session shares (never null).
  const std::shared_ptr<const PatternAssets>& assets() const { return assets_; }

  // --- single-link forwarding (first session by id) -------------------------
  // The original one-link daemon API, kept for the single-AP tools and
  // tests; requires at least one session.

  /// Probe subset to use for the next training round.
  std::vector<int> next_probe_subset();

  /// Consume the just-finished round: read the ring buffer, select, and
  /// force the sector. Returns the selection, or nullopt when nothing was
  /// decoded (the previous override stays in place).
  std::optional<CssResult> process_sweep();

  // --- multi-link batched round ---------------------------------------------

  /// Finish a round for every session with a parked sweep (see
  /// LinkSession::prepare_sweep): the batchable sessions' selections run
  /// as ONE CorrelationEngine::combined_argmax_batch walk over the shared
  /// assets -- links probing the same subset traverse each response tile
  /// while it is cache-hot -- and the rest (tracking, degradation,
  /// fallback rounds, empty sweeps) complete with their own selectors.
  /// Results land in `out[link_id]` (entries for links without a parked
  /// sweep are untouched). Bit-identical to calling complete_sweep() on
  /// each session in isolation. Scratch lives on the daemon, so repeated
  /// rounds are allocation-free once warm.
  void complete_prepared(
      std::map<int, std::optional<CssResult>>* out = nullptr);

  /// prepare_sweep() on every session, then complete_prepared(): the
  /// whole-fleet analogue of per-session process_sweep(), one batched
  /// selection walk per round. Returns one result per session, keyed by
  /// link id.
  std::map<int, std::optional<CssResult>> process_sweeps();

  /// Number of sweeps processed (first session).
  std::size_t rounds() const;

  std::size_t current_probes() const;

  /// The smoothed path direction (empty unless track_path is on and at
  /// least one valid estimate arrived).
  const std::optional<Direction>& tracked_direction() const;

  // --- robustness observability ---------------------------------------------

  /// Sum of all sessions' fault counters (robustness campaign); all zero
  /// when no session carries a fault plan.
  FaultStats total_fault_stats() const;

  /// Sum of all sessions' degradation counters.
  DegradationStats total_degradation_stats() const;

  /// Sum of all sessions' lifecycle transition counters and time-in-state
  /// aggregates (unit: rounds); zero unless degradation is enabled.
  LifecycleStats total_lifecycle_stats() const;

 private:
  LinkSession& first_session();
  const LinkSession& first_session() const;
  LinkSession& insert_session(int link_id, std::unique_ptr<LinkSession> session);
  /// May this parked sweep join the shared batched walk? Requires the
  /// session's batchable verdict AND that it rides the daemon's own
  /// assets -- a per-link or hot-swapped table must go through the
  /// session's own selector.
  bool joins_batch(const LinkSession& session) const;

  std::shared_ptr<const PatternAssets> assets_;
  CssDaemonConfig defaults_;
  /// Keyed by link id; unique_ptr keeps session addresses stable across
  /// insertions (sessions hand out references).
  std::map<int, std::unique_ptr<LinkSession>> sessions_;
  /// Batched-selection scratch (complete_prepared), reused across rounds.
  CorrelationWorkspace batch_ws_;
  std::vector<LinkSession*> batch_links_;
  std::vector<std::span<const SectorReading>> batch_sweeps_;
  std::vector<CssResult> batch_results_;
};

}  // namespace talon
