// The user-space selection loop: what the paper's evaluation scripts do
// after every probing sweep (Sec. 6.1), packaged as a long-running
// component. After each training round it drains the sweep info through
// the driver, runs compressive selection, installs the result via the
// sector override, and optionally lets the adaptive controller pick the
// next round's probe count.
#pragma once

#include <memory>
#include <optional>

#include "src/core/adaptive.hpp"
#include "src/core/css.hpp"
#include "src/core/selector.hpp"
#include "src/core/subset_policy.hpp"
#include "src/core/tracking.hpp"
#include "src/driver/wil6210.hpp"

namespace talon {

struct CssDaemonConfig {
  /// Fixed probe count when no adaptive controller is enabled.
  std::size_t probes{14};
  bool adaptive{false};
  AdaptiveProbeConfig adaptive_config{};
  /// Smooth the per-sweep direction estimates with a PathTracker and run
  /// Eq. 4 on the *tracked* direction (rejects one-off estimate jumps,
  /// re-locks on persistent path changes such as blockage).
  bool track_path{false};
  PathTrackerConfig tracker_config{};
};

class CssDaemon {
 public:
  /// The daemon loads the research patches on construction when missing.
  CssDaemon(Wil6210Driver& driver, const PatternTable& patterns,
            const CssDaemonConfig& config, Rng rng);

  /// Probe subset to use for the next training round.
  std::vector<int> next_probe_subset();

  /// Consume the just-finished round: read the ring buffer, select, and
  /// force the sector. Returns the selection, or nullopt when nothing was
  /// decoded (the previous override stays in place).
  std::optional<CssResult> process_sweep();

  /// Number of sweeps processed.
  std::size_t rounds() const { return rounds_; }

  std::size_t current_probes() const;

  /// The smoothed path direction (empty unless track_path is on and at
  /// least one valid estimate arrived).
  const std::optional<Direction>& tracked_direction() const;

 private:
  Wil6210Driver* driver_;
  CompressiveSectorSelector css_;
  CssDaemonConfig config_;
  RandomSubsetPolicy policy_;
  AdaptiveProbeController controller_;
  /// CssSelector, or TrackingCssSelector when track_path is on -- the
  /// daemon loop only ever talks to the strategy interface.
  std::unique_ptr<SectorSelector> strategy_;
  /// Non-null alias of strategy_ in tracking mode (for tracked()).
  TrackingCssSelector* tracking_{nullptr};
  Rng rng_;
  std::size_t rounds_{0};
};

}  // namespace talon
