#include "src/channel/orientation.hpp"

#include <cmath>

namespace talon {

namespace {

Vec3 rotate_z(const Vec3& v, double deg) {
  const double a = deg_to_rad(deg);
  const double c = std::cos(a);
  const double s = std::sin(a);
  return {c * v.x - s * v.y, s * v.x + c * v.y, v.z};
}

/// Rotation about y such that positive `deg` tilts +x toward +z.
Vec3 rotate_y_up(const Vec3& v, double deg) {
  const double a = deg_to_rad(deg);
  const double c = std::cos(a);
  const double s = std::sin(a);
  return {c * v.x - s * v.z, v.y, s * v.x + c * v.z};
}

}  // namespace

Direction DeviceOrientation::to_device_frame(const Direction& world) const {
  Vec3 v = unit_vector(world);
  v = rotate_y_up(v, -tilt_deg_);   // undo the mount tilt (about world y)
  v = rotate_z(v, -azimuth_deg_);   // undo azimuth
  return direction_of(v);
}

Direction DeviceOrientation::to_world_frame(const Direction& device) const {
  Vec3 v = unit_vector(device);
  v = rotate_z(v, azimuth_deg_);
  v = rotate_y_up(v, tilt_deg_);
  return direction_of(v);
}

}  // namespace talon
