// 60 GHz propagation losses.
//
// Free-space path loss dominates indoors at 60 GHz; oxygen absorption
// (~15 dB/km around 60 GHz) is included for completeness, and reflections
// suffer a material-dependent loss that makes NLOS paths distinctly weaker
// than LOS -- the sparsity compressive tracking exploits.
#pragma once

namespace talon {

/// Free-space path loss [dB] at `distance_m` for the 60.48 GHz carrier.
double free_space_path_loss_db(double distance_m);

/// Oxygen absorption [dB] over `distance_m` (15 dB/km at 60 GHz).
double oxygen_absorption_db(double distance_m);

/// Total LOS path gain [dB] (negative): -(FSPL + absorption).
double line_of_sight_gain_db(double distance_m);

}  // namespace talon
