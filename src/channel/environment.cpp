#include "src/channel/environment.hpp"

#include "src/channel/pathloss.hpp"
#include "src/common/error.hpp"

namespace talon {

namespace {

Vec3 mirror_across(const Reflector& r, const Vec3& p) {
  switch (r.plane) {
    case Reflector::Plane::X:
      return {2.0 * r.coordinate - p.x, p.y, p.z};
    case Reflector::Plane::Y:
      return {p.x, 2.0 * r.coordinate - p.y, p.z};
    case Reflector::Plane::Z:
      return {p.x, p.y, 2.0 * r.coordinate - p.z};
  }
  throw PreconditionError("invalid reflector plane");
}

double plane_coordinate(const Reflector& r, const Vec3& p) {
  switch (r.plane) {
    case Reflector::Plane::X:
      return p.x;
    case Reflector::Plane::Y:
      return p.y;
    case Reflector::Plane::Z:
      return p.z;
  }
  throw PreconditionError("invalid reflector plane");
}

}  // namespace

RayTracedEnvironment::RayTracedEnvironment(std::string name,
                                           std::vector<Reflector> reflectors,
                                           bool line_of_sight)
    : name_(std::move(name)),
      reflectors_(std::move(reflectors)),
      reflector_enabled_(reflectors_.size(), 1),
      line_of_sight_(line_of_sight) {}

void RayTracedEnvironment::set_los_blockage_db(double db) {
  TALON_EXPECTS(db >= 0.0);
  los_blockage_db_ = db;
}

void RayTracedEnvironment::set_reflector_enabled(std::size_t index, bool enabled) {
  TALON_EXPECTS(index < reflectors_.size());
  reflector_enabled_[index] = enabled ? 1 : 0;
}

bool RayTracedEnvironment::reflector_enabled(std::size_t index) const {
  TALON_EXPECTS(index < reflectors_.size());
  return reflector_enabled_[index] != 0;
}

std::vector<Ray> RayTracedEnvironment::rays(const Vec3& tx, const Vec3& rx) const {
  const double los_distance = norm(rx - tx);
  TALON_EXPECTS(los_distance > 0.0);
  std::vector<Ray> out;
  if (line_of_sight_) {
    out.push_back(Ray{
        .departure_world = direction_of(rx - tx),
        .arrival_world = direction_of(tx - rx),
        .gain_db = line_of_sight_gain_db(los_distance) - los_blockage_db_,
    });
  }
  for (std::size_t i = 0; i < reflectors_.size(); ++i) {
    if (!reflector_enabled_[i]) continue;
    const Reflector& r = reflectors_[i];
    // Both endpoints must lie on the same side of the plane for a valid
    // single-bounce specular path.
    const double side_tx = plane_coordinate(r, tx) - r.coordinate;
    const double side_rx = plane_coordinate(r, rx) - r.coordinate;
    if (side_tx == 0.0 || side_rx == 0.0 || (side_tx > 0) != (side_rx > 0)) continue;
    const Vec3 rx_image = mirror_across(r, rx);
    const Vec3 tx_image = mirror_across(r, tx);
    const double path_len = norm(rx_image - tx);
    out.push_back(Ray{
        .departure_world = direction_of(rx_image - tx),
        .arrival_world = direction_of(tx_image - rx),
        .gain_db = line_of_sight_gain_db(path_len) - r.loss_db,
    });
  }
  TALON_EXPECTS(!out.empty());
  return out;
}

std::unique_ptr<Environment> make_anechoic_chamber() {
  return std::make_unique<RayTracedEnvironment>("anechoic", std::vector<Reflector>{});
}

std::unique_ptr<Environment> make_lab_environment() {
  // Cluttered but absorptive: one side wall and the ceiling, both lossy.
  // Nodes are placed near the origin, facing each other along x at ~1 m
  // height (see sim/scenario.cpp).
  std::vector<Reflector> reflectors{
      Reflector{Reflector::Plane::Y, 1.8, 16.0, "side wall"},
      Reflector{Reflector::Plane::Z, 2.6, 18.0, "ceiling"},
  };
  return std::make_unique<RayTracedEnvironment>("lab", std::move(reflectors));
}

std::unique_ptr<Environment> make_conference_room() {
  // "a couple of potential reflectors such as white-boards" (Sec. 6.1):
  // a whiteboard wall with low loss plus two more walls.
  std::vector<Reflector> reflectors{
      Reflector{Reflector::Plane::Y, 2.2, 11.0, "whiteboard"},
      Reflector{Reflector::Plane::Y, -2.8, 14.0, "side wall"},
      Reflector{Reflector::Plane::Z, 2.8, 16.0, "ceiling"},
  };
  return std::make_unique<RayTracedEnvironment>("conference", std::move(reflectors));
}

}  // namespace talon
