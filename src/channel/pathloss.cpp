#include "src/channel/pathloss.hpp"

#include <cmath>

#include "src/common/angles.hpp"
#include "src/common/error.hpp"
#include "src/common/units.hpp"

namespace talon {

double free_space_path_loss_db(double distance_m) {
  TALON_EXPECTS(distance_m > 0.0);
  return 20.0 * std::log10(4.0 * kPi * distance_m / kWavelengthM);
}

double oxygen_absorption_db(double distance_m) {
  TALON_EXPECTS(distance_m >= 0.0);
  constexpr double kOxygenDbPerMeter = 0.015;
  return kOxygenDbPerMeter * distance_m;
}

double line_of_sight_gain_db(double distance_m) {
  return -(free_space_path_loss_db(distance_m) + oxygen_absorption_db(distance_m));
}

}  // namespace talon
