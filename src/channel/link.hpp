// Link budget: per-sector received power and true SNR.
//
// Combines environment rays with the TX sector's and RX sector's realized
// gains (evaluated in each device's frame) and sums ray powers
// noncoherently. This "true" SNR is what the PHY measurement model
// (src/phy) then distorts into the firmware-reported SNR/RSSI.
#pragma once

#include "src/antenna/gain_source.hpp"
#include "src/channel/environment.hpp"
#include "src/channel/orientation.hpp"
#include "src/common/units.hpp"
#include "src/common/vec3.hpp"

namespace talon {

struct RadioConfig {
  /// Conducted transmit power [dBm]. The default is calibrated so that the
  /// strongest sector at 3 m (anechoic) reports ~11 dB on the firmware
  /// scale -- just below the 12 dB clamp, like the paper's Fig. 5 peaks.
  double tx_power_dbm{8.0};
  /// Receiver noise figure [dB].
  double noise_figure_db{10.0};
  /// Receiver bandwidth [Hz].
  double bandwidth_hz{kChannelBandwidthHz};

  double noise_floor_dbm() const {
    return thermal_noise_dbm(bandwidth_hz, noise_figure_db);
  }
};

/// Full pose of one end of a link.
struct EndpointPose {
  Vec3 position;
  DeviceOrientation orientation;
};

/// Received power [dBm] at `rx` for a transmission from `tx` using the
/// given sector IDs; sums all environment rays noncoherently.
double received_power_dbm(const GainSource& tx_gain, int tx_sector,
                          const EndpointPose& tx, const GainSource& rx_gain,
                          int rx_sector, const EndpointPose& rx,
                          const Environment& env, const RadioConfig& radio);

/// True link SNR [dB]: received power minus the RX noise floor.
double link_snr_db(const GainSource& tx_gain, int tx_sector, const EndpointPose& tx,
                   const GainSource& rx_gain, int rx_sector, const EndpointPose& rx,
                   const Environment& env, const RadioConfig& radio);

}  // namespace talon
