// Ray-based 60 GHz propagation environments.
//
// An Environment turns a TX/RX placement into the sparse set of dominant
// propagation paths (LOS plus first-order specular reflections via image
// sources). Three factory environments mirror the paper's venues:
//  - anechoic chamber (Sec. 4): LOS only,
//  - lab (Sec. 6.1): 3 m link, weak reflectors,
//  - conference room (Sec. 6.1): 6 m link, "a couple of potential
//    reflectors such as white-boards", i.e. stronger multipath that
//    degrades the correlation accuracy in Fig. 7.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "src/common/angles.hpp"
#include "src/common/vec3.hpp"

namespace talon {

/// One propagation path between two nodes.
struct Ray {
  /// Direction the wave leaves the TX, world frame.
  Direction departure_world;
  /// Direction the wave arrives *from*, seen at the RX, world frame
  /// (i.e. the direction the RX antenna must point at to capture it).
  Direction arrival_world;
  /// Path gain excluding both antenna gains [dB]; negative.
  double gain_db{0.0};
};

class Environment {
 public:
  virtual ~Environment() = default;

  /// Dominant rays from `tx` to `rx`. Never empty for distinct positions.
  virtual std::vector<Ray> rays(const Vec3& tx, const Vec3& rx) const = 0;

  virtual std::string name() const = 0;
};

/// An infinite vertical or horizontal reflecting plane.
struct Reflector {
  enum class Plane { X, Y, Z };  // plane {axis} = coordinate
  Plane plane{Plane::Y};
  double coordinate{0.0};
  /// Reflection loss at 60 GHz [dB] (drywall ~10-15, metal/whiteboard ~6-9).
  double loss_db{10.0};
  std::string label;
};

/// Generic environment: LOS plus one image-source reflection per reflector.
class RayTracedEnvironment final : public Environment {
 public:
  RayTracedEnvironment(std::string name, std::vector<Reflector> reflectors,
                       bool line_of_sight = true);

  std::vector<Ray> rays(const Vec3& tx, const Vec3& rx) const override;
  std::string name() const override { return name_; }

  const std::vector<Reflector>& reflectors() const { return reflectors_; }

  /// Attenuate the direct path by `db` (a human torso costs 20-30 dB at
  /// 60 GHz). 0 restores a clear LOS. Reflected paths are unaffected --
  /// this is the scenario where path-tracking algorithms must fall back to
  /// an indirect beam.
  void set_los_blockage_db(double db);
  double los_blockage_db() const { return los_blockage_db_; }

  /// Remove / restore one reflector's specular path without rebuilding
  /// the environment (reflector churn: furniture moved, a door opened, a
  /// whiteboard wheeled away). Disabled reflectors contribute no ray but
  /// keep their index, so churn entities can toggle by stable id.
  void set_reflector_enabled(std::size_t index, bool enabled);
  bool reflector_enabled(std::size_t index) const;

 private:
  std::string name_;
  std::vector<Reflector> reflectors_;
  /// Parallel to reflectors_; char avoids vector<bool> proxy weirdness.
  std::vector<char> reflector_enabled_;
  bool line_of_sight_;
  double los_blockage_db_{0.0};
};

/// Sec. 4: absorber-lined chamber, LOS only.
std::unique_ptr<Environment> make_anechoic_chamber();

/// Sec. 6.1 lab: side wall and ceiling with high reflection loss.
std::unique_ptr<Environment> make_lab_environment();

/// Sec. 6.1 conference room: whiteboard + walls with moderate loss.
std::unique_ptr<Environment> make_conference_room();

}  // namespace talon
