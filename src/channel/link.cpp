#include "src/channel/link.hpp"

namespace talon {

double received_power_dbm(const GainSource& tx_gain, int tx_sector,
                          const EndpointPose& tx, const GainSource& rx_gain,
                          int rx_sector, const EndpointPose& rx,
                          const Environment& env, const RadioConfig& radio) {
  double total_mw = 0.0;
  for (const Ray& ray : env.rays(tx.position, rx.position)) {
    const Direction dep_dev = tx.orientation.to_device_frame(ray.departure_world);
    const Direction arr_dev = rx.orientation.to_device_frame(ray.arrival_world);
    const double rx_dbm = radio.tx_power_dbm + tx_gain.gain_dbi(tx_sector, dep_dev) +
                          rx_gain.gain_dbi(rx_sector, arr_dev) + ray.gain_db;
    total_mw += dbm_to_mw(rx_dbm);
  }
  return mw_to_dbm(total_mw);
}

double link_snr_db(const GainSource& tx_gain, int tx_sector, const EndpointPose& tx,
                   const GainSource& rx_gain, int rx_sector, const EndpointPose& rx,
                   const Environment& env, const RadioConfig& radio) {
  return received_power_dbm(tx_gain, tx_sector, tx, rx_gain, rx_sector, rx, env,
                            radio) -
         radio.noise_floor_dbm();
}

}  // namespace talon
