// Device pose: where the antenna boresight points in the world frame.
//
// The measurement campaign rotates a device in azimuth with a step-motor
// head and manually tilts it in elevation (Sec. 4.2/4.5); this class is
// that pose. Antenna patterns are defined in the device frame, the channel
// produces ray directions in the world frame; to_device_frame() connects
// the two.
#pragma once

#include "src/common/angles.hpp"
#include "src/common/vec3.hpp"

namespace talon {

// Composition models the paper's rig: the azimuth rotation happens on the
// (possibly tilted) head, i.e. device-to-world = Tilt(about world y) o
// Yaw(about the head axis). With this order a head pose (alpha, tau) puts
// a boresight-facing peer at exactly (-alpha, -tau) in the device frame.
class DeviceOrientation {
 public:
  DeviceOrientation() = default;
  /// Head azimuth [deg] and upward tilt of the whole mount [deg].
  DeviceOrientation(double azimuth_deg, double tilt_deg)
      : azimuth_deg_(azimuth_deg), tilt_deg_(tilt_deg) {}

  double azimuth_deg() const { return azimuth_deg_; }
  double tilt_deg() const { return tilt_deg_; }

  /// Map a world-frame direction into the device frame (the frame antenna
  /// patterns are expressed in).
  Direction to_device_frame(const Direction& world) const;

  /// Map a device-frame direction back to the world frame.
  Direction to_world_frame(const Direction& device) const;

  /// The device boresight expressed in the world frame.
  Direction boresight_world() const { return to_world_frame({0.0, 0.0}); }

 private:
  double azimuth_deg_{0.0};
  double tilt_deg_{0.0};
};

}  // namespace talon
