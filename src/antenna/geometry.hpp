// Planar phased-array geometry.
//
// The Talon AD7200's QCA9500 module drives a 32-element planar array. We
// model it as an 8 (horizontal, y axis) x 4 (vertical, z axis) lattice,
// boresight along +x. Horizontal spacing is half a wavelength; vertical
// spacing is tighter (0.35 lambda), giving the wide elevation beams the
// paper measures in Fig. 6 -- sectors keep useful gain up to ~30 deg
// elevation, while azimuth beams stay narrow.
#pragma once

#include <cstddef>
#include <vector>

#include "src/common/vec3.hpp"

namespace talon {

class PlanarArrayGeometry {
 public:
  /// cols elements along y (spacing col_spacing_wavelengths), rows along z
  /// (spacing row_spacing_wavelengths; defaults to the column spacing).
  PlanarArrayGeometry(std::size_t cols, std::size_t rows,
                      double col_spacing_wavelengths,
                      double row_spacing_wavelengths = 0.0);

  std::size_t cols() const { return cols_; }
  std::size_t rows() const { return rows_; }
  std::size_t element_count() const { return cols_ * rows_; }
  double col_spacing_wavelengths() const { return col_spacing_; }
  double row_spacing_wavelengths() const { return row_spacing_; }

  /// Element positions in wavelengths, centered on the array origin.
  /// Index order: element (c, r) at index r * cols + c.
  const std::vector<Vec3>& element_positions() const { return positions_; }

 private:
  std::size_t cols_;
  std::size_t rows_;
  double col_spacing_;
  double row_spacing_;
  std::vector<Vec3> positions_;
};

/// The Talon AD7200 array: 8x4 elements, 0.5 x 0.35 lambda spacing.
PlanarArrayGeometry talon_array_geometry();

}  // namespace talon
