#include "src/antenna/codebook.hpp"

#include <algorithm>
#include <cmath>

#include "src/common/error.hpp"
#include "src/common/rng.hpp"

namespace talon {

Codebook::Codebook(std::vector<Sector> sectors) : sectors_(std::move(sectors)) {
  TALON_EXPECTS(!sectors_.empty());
  std::sort(sectors_.begin(), sectors_.end(),
            [](const Sector& a, const Sector& b) { return a.id < b.id; });
  for (std::size_t i = 0; i + 1 < sectors_.size(); ++i) {
    TALON_EXPECTS(sectors_[i].id != sectors_[i + 1].id);
  }
  for (const Sector& s : sectors_) {
    TALON_EXPECTS(s.id >= 0 && s.id <= kMaxSectorId);
    TALON_EXPECTS(!s.weights.empty());
  }
}

bool Codebook::contains(int id) const {
  return std::any_of(sectors_.begin(), sectors_.end(),
                     [id](const Sector& s) { return s.id == id; });
}

const Sector& Codebook::sector(int id) const {
  const auto it = std::find_if(sectors_.begin(), sectors_.end(),
                               [id](const Sector& s) { return s.id == id; });
  TALON_EXPECTS(it != sectors_.end());
  return *it;
}

std::vector<int> Codebook::ids() const {
  std::vector<int> out;
  out.reserve(sectors_.size());
  for (const Sector& s : sectors_) out.push_back(s.id);
  return out;
}

const std::vector<int>& talon_tx_sector_ids() {
  static const std::vector<int> ids = [] {
    std::vector<int> v;
    for (int i = 1; i <= 31; ++i) v.push_back(i);
    v.push_back(61);
    v.push_back(62);
    v.push_back(63);
    return v;
  }();
  return ids;
}

const std::vector<int>& talon_beacon_sector_ids() {
  static const std::vector<int> ids = [] {
    std::vector<int> v;
    v.push_back(63);
    for (int i = 1; i <= 31; ++i) v.push_back(i);
    return v;
  }();
  return ids;
}

namespace {

/// Normalize a weight vector to unit per-element amplitude cap before
/// quantization (the quantizer snaps amplitudes in (0, 1]).
WeightVector normalize_amplitudes(WeightVector w) {
  double peak = 0.0;
  for (const Complex& c : w) peak = std::max(peak, std::abs(c));
  if (peak > 0.0) {
    for (Complex& c : w) c /= peak;
  }
  return w;
}

/// Superpose two steering vectors -> a deliberately multi-lobed sector.
WeightVector dual_lobe_weights(const std::vector<Vec3>& positions,
                               const Direction& a, const Direction& b) {
  const WeightVector wa = steering_weights(positions, a);
  const WeightVector wb = steering_weights(positions, b);
  WeightVector out;
  out.reserve(wa.size());
  for (std::size_t i = 0; i < wa.size(); ++i) out.push_back(wa[i] + wb[i]);
  return normalize_amplitudes(std::move(out));
}

/// Pseudo-random phases on a subset of elements -> weak, scattered sector
/// (like the Talon's sectors 61/62 that show low gain in most directions).
WeightVector scattered_weights(std::size_t element_count, double active_fraction,
                               Rng& rng) {
  WeightVector out;
  out.reserve(element_count);
  for (std::size_t i = 0; i < element_count; ++i) {
    if (!rng.bernoulli(active_fraction)) {
      out.emplace_back(0.0, 0.0);
      continue;
    }
    const double phase = rng.uniform(0.0, 2.0 * kPi);
    out.emplace_back(std::cos(phase), std::sin(phase));
  }
  return out;
}

}  // namespace

Codebook make_talon_codebook(const PlanarArrayGeometry& geometry,
                             const TalonCodebookConfig& config) {
  const auto& positions = geometry.element_positions();
  Rng rng(config.seed);
  std::vector<Sector> sectors;
  sectors.reserve(36);

  // --- Directional TX sectors 1..31 -------------------------------------
  // Azimuths cover +-56 deg. The ID -> azimuth mapping is a fixed
  // pseudo-random permutation: on the real device, neighbouring IDs do not
  // point at neighbouring angles (Fig. 5).
  std::vector<int> az_slot(31);
  for (int i = 0; i < 31; ++i) az_slot[static_cast<std::size_t>(i)] = i;
  std::shuffle(az_slot.begin(), az_slot.end(), rng.engine());

  // A few sectors behave specially, mirroring the paper's measurements:
  // sector 5 is weak in-plane with "stronger lobes at higher elevation
  // angles" (modeled as a top-half-array excitation steered upward: lower
  // peak gain, wide elevation lobe), sector 25 has low gain everywhere
  // (scattered phases, like 62), and 13/22/27 are multi-lobed.
  const auto elevation_for = [](int id) -> double {
    switch (id) {
      case 3:
      case 9:
      case 16:
      case 23:
      case 29:
        return 12.0;  // mildly tilted
      default:
        return 0.0;
    }
  };
  const auto is_dual_lobe = [](int id) { return id == 13 || id == 22 || id == 27; };

  for (int id = 1; id <= 31; ++id) {
    const double az =
        -56.0 + 112.0 * static_cast<double>(az_slot[static_cast<std::size_t>(id - 1)]) / 30.0;
    Direction nominal{az, elevation_for(id)};
    WeightVector ideal;
    if (id == 5) {
      // Elevated sector: only the top two element rows active, steered up.
      nominal = Direction{az, 24.0};
      ideal = steering_weights(positions, nominal);
      const std::size_t cols = geometry.cols();
      const std::size_t rows = geometry.rows();
      for (std::size_t r = 0; r < rows / 2; ++r) {
        for (std::size_t c = 0; c < cols; ++c) ideal[r * cols + c] = Complex(0.0, 0.0);
      }
    } else if (id == 25) {
      ideal = scattered_weights(positions.size(), 0.5, rng);
    } else if (is_dual_lobe(id)) {
      // Second lobe mirrored across boresight at a slight elevation.
      const Direction second{-az * 0.6, 8.0};
      ideal = dual_lobe_weights(positions, nominal, second);
    } else {
      ideal = steering_weights(positions, nominal);
    }
    sectors.push_back(Sector{
        .id = id,
        .weights = config.quantizer.quantize(ideal),
        .nominal = nominal,
    });
  }

  // --- Irregular sectors 61 and 62 ---------------------------------------
  // 61: a moderately wide beam (only the central 2x2 block active).
  {
    WeightVector w(positions.size(), Complex(0.0, 0.0));
    const std::size_t cols = geometry.cols();
    const std::size_t rows = geometry.rows();
    for (std::size_t r = rows / 2 - 1; r <= rows / 2; ++r) {
      for (std::size_t c = cols / 2 - 1; c <= cols / 2; ++c) {
        w[r * cols + c] = Complex(1.0, 0.0);
      }
    }
    sectors.push_back(Sector{.id = 61, .weights = w, .nominal = {0.0, 0.0}});
  }
  // 62: scattered pseudo-random phases, low gain in all directions.
  sectors.push_back(Sector{
      .id = 62,
      .weights = config.quantizer.quantize(scattered_weights(positions.size(), 0.5, rng)),
      .nominal = {0.0, 0.0},
  });

  // --- Sector 63: strong unidirectional boresight beam --------------------
  // Used for beaconing and as the fixed TX sector when measuring the RX
  // pattern (Sec. 4.3). Modeled with fine phase resolution: vendors
  // hand-tune this one.
  {
    WeightQuantizer fine{.phase_states = 16, .amplitude_states = 4};
    sectors.push_back(Sector{
        .id = 63,
        .weights = fine.quantize(steering_weights(positions, {0.0, 0.0})),
        .nominal = {0.0, 0.0},
    });
  }

  // --- RX quasi-omni sector ------------------------------------------------
  // "the same (quasi omni-directional) sector is always used for reception"
  // (Sec. 4.1). A single active element gives the widest pattern the array
  // can produce.
  {
    WeightVector w(positions.size(), Complex(0.0, 0.0));
    w[(geometry.rows() / 2) * geometry.cols() + geometry.cols() / 2] = Complex(1.0, 0.0);
    sectors.push_back(
        Sector{.id = kRxQuasiOmniSectorId, .weights = w, .nominal = {0.0, 0.0}});
  }

  return Codebook(std::move(sectors));
}

Codebook make_dense_codebook(const PlanarArrayGeometry& geometry,
                             int directional_sectors,
                             const TalonCodebookConfig& config) {
  TALON_EXPECTS(directional_sectors >= 2 && directional_sectors <= kMaxSectorId);
  const auto& positions = geometry.element_positions();
  std::vector<Sector> sectors;
  sectors.reserve(static_cast<std::size_t>(directional_sectors) + 1);

  // Two elevation layers (0 and 14 deg) with azimuths interleaved so
  // consecutive IDs alternate layers, covering +-56 deg.
  const int per_layer = (directional_sectors + 1) / 2;
  for (int id = 1; id <= directional_sectors; ++id) {
    const int layer = (id - 1) % 2;
    const int slot = (id - 1) / 2;
    const int layer_count = layer == 0 ? per_layer : directional_sectors - per_layer;
    const double frac = layer_count <= 1
                            ? 0.5
                            : static_cast<double>(slot) / (layer_count - 1);
    const Direction nominal{-56.0 + 112.0 * frac, layer == 0 ? 0.0 : 14.0};
    sectors.push_back(Sector{
        .id = id,
        .weights = config.quantizer.quantize(steering_weights(positions, nominal)),
        .nominal = nominal,
    });
  }

  WeightVector rx(positions.size(), Complex(0.0, 0.0));
  rx[(geometry.rows() / 2) * geometry.cols() + geometry.cols() / 2] = Complex(1.0, 0.0);
  sectors.push_back(
      Sector{.id = kRxQuasiOmniSectorId, .weights = rx, .nominal = {0.0, 0.0}});
  return Codebook(std::move(sectors));
}

}  // namespace talon
