#include "src/antenna/weights.hpp"

#include <algorithm>
#include <cmath>

#include "src/common/angles.hpp"
#include "src/common/error.hpp"

namespace talon {

WeightVector WeightQuantizer::quantize(const WeightVector& weights) const {
  TALON_EXPECTS(phase_states >= 2);
  TALON_EXPECTS(amplitude_states >= 1);
  WeightVector out;
  out.reserve(weights.size());
  const double phase_step = 2.0 * kPi / phase_states;
  const double amp_step = 1.0 / amplitude_states;
  for (const Complex& w : weights) {
    const double amp = std::abs(w);
    // Snap amplitude to the nearest level in {0, amp_step, ..., 1}.
    const double level = std::round(std::min(amp, 1.0) / amp_step) * amp_step;
    if (level <= 0.0) {
      out.emplace_back(0.0, 0.0);
      continue;
    }
    const double phase = std::round(std::arg(w) / phase_step) * phase_step;
    out.push_back(level * Complex(std::cos(phase), std::sin(phase)));
  }
  return out;
}

WeightVector steering_weights(const std::vector<Vec3>& element_positions,
                              const Direction& dir) {
  const Vec3 u = unit_vector(dir);
  WeightVector weights;
  weights.reserve(element_positions.size());
  for (const Vec3& p : element_positions) {
    // Positions are in wavelengths, so the element phase toward `dir` is
    // 2*pi*(u . p); the steering weight conjugates it.
    const double phase = -2.0 * kPi * dot(u, p);
    weights.emplace_back(std::cos(phase), std::sin(phase));
  }
  return weights;
}

double total_weight_power(const WeightVector& weights) {
  double sum = 0.0;
  for (const Complex& w : weights) sum += std::norm(w);
  return sum;
}

}  // namespace talon
