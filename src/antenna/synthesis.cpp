#include "src/antenna/synthesis.hpp"

#include <cmath>

#include "src/common/error.hpp"
#include "src/common/units.hpp"
#include "src/common/vec3.hpp"

namespace talon {

double array_gain_dbi(const PlanarArrayGeometry& geometry, const ElementModel& element,
                      const WeightVector& weights, const Direction& dir) {
  TALON_EXPECTS(weights.size() == geometry.element_count());
  const double power = total_weight_power(weights);
  if (power <= 0.0) return -120.0;  // all elements off
  const Vec3 u = unit_vector(dir);
  const double elem_gain_lin = db_to_linear(element.gain_dbi(dir));
  Complex field(0.0, 0.0);
  const auto& positions = geometry.element_positions();
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const double phase = 2.0 * kPi * dot(u, positions[i]);
    field += weights[i] * Complex(std::cos(phase), std::sin(phase));
  }
  // Matched unquantized steering yields |field|^2 = N^2 * power/N, so the
  // normalized array factor peaks at N; the element gain multiplies on top.
  return linear_to_db(std::norm(field) / power * elem_gain_lin);
}

ArrayGainSource::ArrayGainSource(PlanarArrayGeometry geometry, ElementModel element,
                                 Codebook codebook, CalibrationErrors calibration,
                                 std::optional<MutualCoupling> coupling)
    : geometry_(std::move(geometry)),
      element_(std::move(element)),
      codebook_(std::move(codebook)),
      calibration_(std::move(calibration)),
      coupling_(std::move(coupling)) {
  TALON_EXPECTS(calibration_.element_count() == geometry_.element_count());
  if (coupling_) {
    TALON_EXPECTS(coupling_->element_count() == geometry_.element_count());
  }
  realized_.reserve(codebook_.size());
  for (const Sector& s : codebook_.sectors()) {
    TALON_EXPECTS(s.weights.size() == geometry_.element_count());
    realized_.push_back(realize(s.weights));
  }
}

WeightVector ArrayGainSource::realize(const WeightVector& weights) const {
  // The drive passes the miscalibrated RF chains first, then couples in
  // the aperture.
  WeightVector out = calibration_.apply(weights);
  if (coupling_) out = coupling_->apply(out);
  return out;
}

double ArrayGainSource::gain_with_weights(const WeightVector& weights,
                                          const Direction& dir) const {
  return array_gain_dbi(geometry_, element_, realize(weights), dir);
}

double ArrayGainSource::gain_dbi(int sector_id, const Direction& dir) const {
  const auto& sectors = codebook_.sectors();
  for (std::size_t i = 0; i < sectors.size(); ++i) {
    if (sectors[i].id == sector_id) {
      return array_gain_dbi(geometry_, element_, realized_[i], dir);
    }
  }
  throw PreconditionError("unknown sector id " + std::to_string(sector_id));
}

Grid2D synthesize_pattern_grid(const GainSource& source, int sector_id,
                               const AngularGrid& grid) {
  Grid2D out(grid);
  for (std::size_t ie = 0; ie < grid.elevation.count; ++ie) {
    for (std::size_t ia = 0; ia < grid.azimuth.count; ++ia) {
      out.set(ia, ie, source.gain_dbi(sector_id, grid.direction(ia, ie)));
    }
  }
  return out;
}

ArrayGainSource make_talon_front_end(std::uint64_t device_seed) {
  PlanarArrayGeometry geometry = talon_array_geometry();
  ElementModelConfig element_config;
  element_config.device_seed = device_seed;
  CalibrationErrorConfig cal_config;
  cal_config.device_seed = device_seed ^ 0x5EEDF00DULL;
  return ArrayGainSource(geometry, ElementModel(element_config),
                         make_talon_codebook(geometry),
                         CalibrationErrors(geometry.element_count(), cal_config),
                         MutualCoupling(geometry, MutualCouplingConfig{}));
}

}  // namespace talon
