// Far-field synthesis: from weights to realized gain.
//
// This is the physical ground truth of the simulation. The channel model
// queries it for the gain each sector actually provides toward each ray;
// the measurement campaign (src/measure) observes it only through noisy
// sweeps, mirroring how the paper can only measure its hardware.
#pragma once

#include <memory>
#include <optional>

#include "src/antenna/codebook.hpp"
#include "src/antenna/element.hpp"
#include "src/antenna/gain_source.hpp"
#include "src/antenna/geometry.hpp"
#include "src/antenna/imperfection.hpp"
#include "src/common/grid.hpp"

namespace talon {

/// Realized far-field gain [dBi] of an excitation toward `dir`.
/// Gain = |sum_i w_i * sqrt(g_elem(dir)) * e^{j 2 pi u.p_i}|^2 / sum_i |w_i|^2,
/// i.e. normalized so that a perfectly matched unquantized steering vector
/// attains N * g_elem (array gain times element gain).
double array_gain_dbi(const PlanarArrayGeometry& geometry, const ElementModel& element,
                      const WeightVector& weights, const Direction& dir);

/// Ground-truth gain of every sector of one physical device
/// (geometry + element/chassis model + codebook + calibration errors +
/// optional mutual coupling).
class ArrayGainSource final : public GainSource {
 public:
  ArrayGainSource(PlanarArrayGeometry geometry, ElementModel element, Codebook codebook,
                  CalibrationErrors calibration,
                  std::optional<MutualCoupling> coupling = std::nullopt);

  double gain_dbi(int sector_id, const Direction& dir) const override;

  /// Realized gain of an *arbitrary* excitation on this device (the
  /// device's calibration errors apply, exactly as for codebook sectors).
  /// This is the path beam refinement uses to try custom AWVs.
  double gain_with_weights(const WeightVector& weights, const Direction& dir) const;

  const Codebook& codebook() const { return codebook_; }
  const PlanarArrayGeometry& geometry() const { return geometry_; }
  const CalibrationErrors& calibration() const { return calibration_; }

 private:
  WeightVector realize(const WeightVector& weights) const;

  PlanarArrayGeometry geometry_;
  ElementModel element_;
  Codebook codebook_;
  CalibrationErrors calibration_;
  std::optional<MutualCoupling> coupling_;
  // Realized (calibration- and coupling-distorted) weights per codebook
  // entry, index aligned with codebook_.sectors().
  std::vector<WeightVector> realized_;
};

/// Sample a sector's ground-truth pattern onto a grid (values in dBi).
Grid2D synthesize_pattern_grid(const GainSource& source, int sector_id,
                               const AngularGrid& grid);

/// Convenience: a complete simulated Talon AD7200 front-end.
/// `device_seed` individualizes chassis ripple and calibration errors.
ArrayGainSource make_talon_front_end(std::uint64_t device_seed);

}  // namespace talon
