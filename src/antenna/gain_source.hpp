// Abstraction over "the gain of sector n toward direction d".
//
// Two implementations exist on purpose:
//  - ArrayGainSource (synthesis.hpp): the physical ground truth computed
//    from the array model; the channel simulator uses this.
//  - PatternTableGainSource (pattern.hpp): the *measured* pattern table
//    from the anechoic-chamber campaign; the CSS algorithm uses this.
// Keeping them behind one interface lets experiments quantify how much the
// measured table deviates from the truth (an ablation the paper motivates:
// theoretical patterns are not good enough on real hardware).
#pragma once

#include "src/common/angles.hpp"

namespace talon {

class GainSource {
 public:
  virtual ~GainSource() = default;

  /// Gain of `sector_id` toward `dir` in the device frame.
  /// Unit is dB relative to an implementation-defined reference (dBi for
  /// the array model, measured SNR dB for a pattern table); correlation
  /// based consumers only rely on relative shape.
  virtual double gain_dbi(int sector_id, const Direction& dir) const = 0;
};

}  // namespace talon
