// Sector codebooks.
//
// A sector is a predefined weight vector with a 6-bit ID, exactly as probed
// by the 802.11ad sector sweep. make_talon_codebook() generates the 35
// patterns of the Talon AD7200 as reverse-engineered in Sec. 4: transmit
// sectors 1..31 plus 61/62/63, and the quasi-omnidirectional receive sector
// (ID 0 here). The generated family replicates the paper's qualitative
// findings: most sectors have one dominant lobe, some are multi-lobed
// (13/22/27), some have their maximum above the azimuth plane (5/25),
// sector 62 is weak everywhere, and sector 63 is a strong clean boresight
// beam used for beaconing.
#pragma once

#include <cstdint>
#include <vector>

#include "src/antenna/geometry.hpp"
#include "src/antenna/weights.hpp"

namespace talon {

/// The quasi-omni receive sector's ID in this library.
inline constexpr int kRxQuasiOmniSectorId = 0;

/// Largest valid sector ID (6-bit field in SSW frames).
inline constexpr int kMaxSectorId = 63;

struct Sector {
  int id{0};
  WeightVector weights;
  /// Nominal steering direction the weights were designed for (indicative
  /// only; quantization and calibration move the realized peak).
  Direction nominal;
};

class Codebook {
 public:
  explicit Codebook(std::vector<Sector> sectors);

  std::size_t size() const { return sectors_.size(); }
  bool contains(int id) const;
  const Sector& sector(int id) const;  ///< Throws PreconditionError if absent.

  /// All sector IDs in ascending order.
  std::vector<int> ids() const;

  const std::vector<Sector>& sectors() const { return sectors_; }

 private:
  std::vector<Sector> sectors_;  // sorted by id
};

struct TalonCodebookConfig {
  /// Hardware phase/amplitude resolution.
  WeightQuantizer quantizer{.phase_states = 4, .amplitude_states = 1};
  /// Seed for the pseudo-random aspects (sector-to-direction permutation,
  /// the irregular sectors 61/62). Fixed per firmware image.
  std::uint64_t seed{0xAD7200};
};

/// The 34 transmit sector IDs the Talon probes in a sweep (Table 1).
const std::vector<int>& talon_tx_sector_ids();

/// Sector IDs used in beacon bursts (Table 1): 63 then 1..31.
const std::vector<int>& talon_beacon_sector_ids();

/// Generate the Talon-like codebook (34 TX sectors + RX quasi-omni).
Codebook make_talon_codebook(const PlanarArrayGeometry& geometry,
                             const TalonCodebookConfig& config = {});

/// A denser codebook for the Sec. 7 scaling discussion ("future
/// generations are likely to demand ... more fine-grained beam control
/// ... increasing the number of implemented and predefined sectors"):
/// `directional_sectors` steered beams covering azimuth +-56 deg at two
/// elevation layers, plus the quasi-omni RX sector (ID 0). IDs are 1..N
/// (requires directional_sectors <= 63).
Codebook make_dense_codebook(const PlanarArrayGeometry& geometry,
                             int directional_sectors,
                             const TalonCodebookConfig& config = {});

}  // namespace talon
