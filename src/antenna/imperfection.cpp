#include "src/antenna/imperfection.hpp"

#include <cmath>

#include "src/common/angles.hpp"
#include "src/common/error.hpp"
#include "src/common/rng.hpp"
#include "src/common/units.hpp"

namespace talon {

CalibrationErrors::CalibrationErrors(std::size_t element_count,
                                     const CalibrationErrorConfig& config) {
  TALON_EXPECTS(element_count > 0);
  Rng rng(config.device_seed);
  errors_.reserve(element_count);
  for (std::size_t i = 0; i < element_count; ++i) {
    if (rng.bernoulli(config.dead_element_probability)) {
      errors_.emplace_back(0.0, 0.0);
      continue;
    }
    const double amp = std::sqrt(db_to_linear(rng.normal(config.amplitude_stddev_db)));
    const double phase = deg_to_rad(rng.normal(config.phase_stddev_deg));
    errors_.push_back(amp * Complex(std::cos(phase), std::sin(phase)));
  }
}

WeightVector CalibrationErrors::apply(const WeightVector& weights) const {
  TALON_EXPECTS(weights.size() == errors_.size());
  WeightVector out;
  out.reserve(weights.size());
  for (std::size_t i = 0; i < weights.size(); ++i) out.push_back(weights[i] * errors_[i]);
  return out;
}

MutualCoupling::MutualCoupling(const PlanarArrayGeometry& geometry,
                               const MutualCouplingConfig& config) {
  const double mag = std::sqrt(db_to_linear(config.adjacent_coupling_db));
  const double phase = deg_to_rad(config.coupling_phase_deg);
  coupling_ = mag * Complex(std::cos(phase), std::sin(phase));

  const std::size_t cols = geometry.cols();
  const std::size_t rows = geometry.rows();
  neighbours_.resize(geometry.element_count());
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      auto& n = neighbours_[r * cols + c];
      if (c > 0) n.push_back(r * cols + (c - 1));
      if (c + 1 < cols) n.push_back(r * cols + (c + 1));
      if (r > 0) n.push_back((r - 1) * cols + c);
      if (r + 1 < rows) n.push_back((r + 1) * cols + c);
    }
  }
}

WeightVector MutualCoupling::apply(const WeightVector& weights) const {
  TALON_EXPECTS(weights.size() == neighbours_.size());
  WeightVector out(weights);
  for (std::size_t i = 0; i < weights.size(); ++i) {
    Complex leak(0.0, 0.0);
    for (std::size_t n : neighbours_[i]) leak += weights[n];
    out[i] += coupling_ * leak;
  }
  return out;
}

}  // namespace talon
