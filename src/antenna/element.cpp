#include "src/antenna/element.hpp"

#include <algorithm>
#include <cmath>

#include "src/common/rng.hpp"
#include "src/common/units.hpp"
#include "src/common/vec3.hpp"

namespace talon {

namespace {
/// Number of harmonics in the chassis ripple model.
constexpr std::size_t kRippleHarmonics = 5;
/// Peak gain of the bare element [dBi]; a wide 60 GHz patch is ~5 dBi.
constexpr double kElementPeakDbi = 5.0;
}  // namespace

ElementModel::ElementModel(const ElementModelConfig& config) : config_(config) {
  Rng rng(config_.device_seed);
  ripple_amp_.reserve(kRippleHarmonics);
  ripple_phase_.reserve(kRippleHarmonics);
  for (std::size_t h = 0; h < kRippleHarmonics; ++h) {
    ripple_amp_.push_back(rng.uniform(0.3, 1.0));
    ripple_phase_.push_back(rng.uniform(0.0, 2.0 * kPi));
  }
  // Normalize so the summed ripple stays within +-chassis_ripple_db/2.
  double total = 0.0;
  for (double a : ripple_amp_) total += a;
  for (double& a : ripple_amp_) a *= (config_.chassis_ripple_db / 2.0) / total;
}

double ElementModel::gain_dbi(const Direction& dir) const {
  // Angle from boresight (+x) via the dot product with the unit vector.
  const Vec3 u = unit_vector(dir);
  const double cos_off = std::clamp(u.x, -1.0, 1.0);
  // Broad cos^q forward pattern with a diffuse back-lobe floor.
  const double forward =
      cos_off > 0.0 ? std::pow(cos_off, config_.pattern_exponent) : 0.0;
  const double floor_lin = db_to_linear(config_.backlobe_floor_db);
  const double gain_db =
      kElementPeakDbi + linear_to_db(std::max(forward, floor_lin));
  return gain_db - chassis_attenuation_db(dir);
}

double ElementModel::chassis_attenuation_db(const Direction& dir) const {
  const double abs_az = std::fabs(wrap_azimuth_deg(dir.azimuth_deg));
  if (abs_az <= config_.chassis_shadow_start_deg) return 0.0;
  // Smoothly ramp to full depth over the shadowed arc, plus device-specific
  // ripple ("distorted patterns").
  const double span = 180.0 - config_.chassis_shadow_start_deg;
  const double depth_frac = (abs_az - config_.chassis_shadow_start_deg) / span;
  double ripple = 0.0;
  const double az_rad = deg_to_rad(dir.azimuth_deg);
  for (std::size_t h = 0; h < ripple_amp_.size(); ++h) {
    ripple += ripple_amp_[h] *
              std::sin(static_cast<double>(h + 2) * az_rad + ripple_phase_[h]);
  }
  const double atten =
      config_.chassis_shadow_depth_db * depth_frac + ripple * depth_frac;
  return std::max(atten, 0.0);
}

}  // namespace talon
