#include "src/antenna/pattern.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/common/error.hpp"

namespace talon {

void PatternTable::add(int sector_id, Grid2D pattern_db) {
  TALON_EXPECTS(!contains(sector_id));
  if (!patterns_.empty()) {
    TALON_EXPECTS(pattern_db.grid() == grid());
  }
  const auto insert_at = std::find_if(
      patterns_.begin(), patterns_.end(),
      [sector_id](const Entry& e) { return e.id > sector_id; });
  patterns_.insert(insert_at, Entry{sector_id, std::move(pattern_db)});
}

bool PatternTable::contains(int sector_id) const {
  return std::any_of(patterns_.begin(), patterns_.end(),
                     [sector_id](const Entry& e) { return e.id == sector_id; });
}

std::vector<int> PatternTable::ids() const {
  std::vector<int> out;
  out.reserve(patterns_.size());
  for (const Entry& e : patterns_) out.push_back(e.id);
  return out;
}

const AngularGrid& PatternTable::grid() const {
  TALON_EXPECTS(!patterns_.empty());
  return patterns_.front().pattern.grid();
}

const Grid2D& PatternTable::pattern(int sector_id) const {
  const auto it = std::find_if(patterns_.begin(), patterns_.end(),
                               [sector_id](const Entry& e) { return e.id == sector_id; });
  TALON_EXPECTS(it != patterns_.end());
  return it->pattern;
}

double PatternTable::sample_db(int sector_id, const Direction& dir) const {
  return pattern(sector_id).sample(dir);
}

std::vector<double> PatternTable::sample_grid_db(int sector_id,
                                                 const AngularGrid& grid) const {
  const Grid2D& source = pattern(sector_id);
  std::vector<double> out;
  out.reserve(grid.size());
  for (std::size_t ie = 0; ie < grid.elevation.count; ++ie) {
    for (std::size_t ia = 0; ia < grid.azimuth.count; ++ia) {
      out.push_back(source.sample(grid.direction(ia, ie)));
    }
  }
  return out;
}

int PatternTable::best_sector_at(const Direction& dir,
                                 std::span<const int> candidates) const {
  TALON_EXPECTS(!candidates.empty());
  int best_id = -1;
  double best_gain = -std::numeric_limits<double>::infinity();
  for (int id : candidates) {
    const double g = sample_db(id, dir);
    if (g > best_gain) {
      best_gain = g;
      best_id = id;
    }
  }
  return best_id;
}

int PatternTable::best_sector_at(const Direction& dir) const {
  const auto all = ids();
  return best_sector_at(dir, all);
}

CsvTable PatternTable::to_csv() const {
  CsvTable out;
  out.header = {"sector_id", "azimuth_deg", "elevation_deg", "value_db"};
  for (const Entry& e : patterns_) {
    const AngularGrid& g = e.pattern.grid();
    for (std::size_t ie = 0; ie < g.elevation.count; ++ie) {
      for (std::size_t ia = 0; ia < g.azimuth.count; ++ia) {
        const Direction d = g.direction(ia, ie);
        out.rows.push_back({static_cast<double>(e.id), d.azimuth_deg,
                            d.elevation_deg, e.pattern.at(ia, ie)});
      }
    }
  }
  return out;
}

PatternTable PatternTable::from_csv(const CsvTable& table) {
  const std::size_t col_id = table.column("sector_id");
  const std::size_t col_az = table.column("azimuth_deg");
  const std::size_t col_el = table.column("elevation_deg");
  const std::size_t col_val = table.column("value_db");
  if (table.rows.empty()) throw ParseError("pattern csv: no data rows");

  // Reconstruct the grid from the distinct sorted azimuth/elevation values.
  std::vector<double> azs;
  std::vector<double> els;
  for (const auto& row : table.rows) {
    azs.push_back(row[col_az]);
    els.push_back(row[col_el]);
  }
  const auto unique_sorted = [](std::vector<double>& v) {
    std::sort(v.begin(), v.end());
    v.erase(std::unique(v.begin(), v.end(),
                        [](double a, double b) { return std::fabs(a - b) < 1e-9; }),
            v.end());
  };
  unique_sorted(azs);
  unique_sorted(els);
  const auto axis_of = [](const std::vector<double>& v) {
    if (v.size() == 1) return Axis{.first = v.front(), .step = 1.0, .count = 1};
    const double step = (v.back() - v.front()) / static_cast<double>(v.size() - 1);
    for (std::size_t i = 0; i + 1 < v.size(); ++i) {
      if (std::fabs((v[i + 1] - v[i]) - step) > 1e-6) {
        throw ParseError("pattern csv: irregular grid");
      }
    }
    return Axis{.first = v.front(), .step = step, .count = v.size()};
  };
  const AngularGrid grid{.azimuth = axis_of(azs), .elevation = axis_of(els)};

  // Group rows by sector and fill grids.
  std::vector<int> sector_ids;
  for (const auto& row : table.rows) {
    const int id = static_cast<int>(std::lround(row[col_id]));
    if (std::find(sector_ids.begin(), sector_ids.end(), id) == sector_ids.end()) {
      sector_ids.push_back(id);
    }
  }
  PatternTable out;
  for (int id : sector_ids) {
    Grid2D pattern(grid, std::numeric_limits<double>::quiet_NaN());
    for (const auto& row : table.rows) {
      if (static_cast<int>(std::lround(row[col_id])) != id) continue;
      const std::size_t ia = grid.azimuth.nearest_index(row[col_az]);
      const std::size_t ie = grid.elevation.nearest_index(row[col_el]);
      pattern.set(ia, ie, row[col_val]);
    }
    for (double v : pattern.values()) {
      if (std::isnan(v)) {
        throw ParseError("pattern csv: incomplete grid for sector " + std::to_string(id));
      }
    }
    out.add(id, std::move(pattern));
  }
  return out;
}

}  // namespace talon
