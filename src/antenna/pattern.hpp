// Measured sector-pattern tables.
//
// The output of the Sec. 4 measurement campaign and the main data structure
// the CSS algorithm consumes: for every sector, measured response (SNR dB)
// on a regular azimuth x elevation grid. All patterns in one table share the
// same grid. Persistence matches the paper's published data release: one
// long CSV of (sector_id, azimuth, elevation, value) rows.
#pragma once

#include <span>
#include <vector>

#include "src/antenna/gain_source.hpp"
#include "src/common/csv.hpp"
#include "src/common/grid.hpp"

namespace talon {

class PatternTable {
 public:
  PatternTable() = default;

  /// Add a sector's measured pattern. The first add fixes the table grid;
  /// later adds must use the same grid. Re-adding an ID is an error.
  void add(int sector_id, Grid2D pattern_db);

  bool empty() const { return patterns_.empty(); }
  std::size_t size() const { return patterns_.size(); }
  bool contains(int sector_id) const;

  /// Sector IDs in ascending order.
  std::vector<int> ids() const;

  /// The shared angular grid. Table must be non-empty.
  const AngularGrid& grid() const;

  const Grid2D& pattern(int sector_id) const;  ///< Throws if absent.

  /// Bilinear-interpolated response of a sector toward `dir` [dB].
  double sample_db(int sector_id, const Direction& dir) const;

  /// Dense sampling of one sector onto `grid`, row-major with azimuth
  /// fastest (AngularGrid::index order). Resolves the sector once instead
  /// of per-point, so bulk resampling (e.g. building a correlation
  /// response matrix) avoids the per-call table lookup of sample_db().
  std::vector<double> sample_grid_db(int sector_id, const AngularGrid& grid) const;

  /// Eq. 4: the sector among `candidates` with the strongest measured gain
  /// toward `dir`. Ties resolve to the lowest ID.
  int best_sector_at(const Direction& dir, std::span<const int> candidates) const;

  /// Same over all sectors in the table.
  int best_sector_at(const Direction& dir) const;

  /// Serialize to (sector_id, azimuth_deg, elevation_deg, value_db) rows.
  CsvTable to_csv() const;

  /// Parse from to_csv() output; validates that every sector covers the
  /// same complete grid.
  static PatternTable from_csv(const CsvTable& table);

 private:
  struct Entry {
    int id;
    Grid2D pattern;
  };
  std::vector<Entry> patterns_;  // sorted by id
};

/// Adapt a measured PatternTable to the GainSource interface so it can be
/// compared against (or substituted for) the physical array model.
class PatternTableGainSource final : public GainSource {
 public:
  explicit PatternTableGainSource(const PatternTable& table) : table_(&table) {}

  double gain_dbi(int sector_id, const Direction& dir) const override {
    return table_->sample_db(sector_id, dir);
  }

 private:
  const PatternTable* table_;
};

}  // namespace talon
