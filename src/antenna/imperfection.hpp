// Per-element calibration errors of low-cost hardware.
//
// "The low-cost components integrated in [off-the-shelf devices] cause
// imperfections and do not achieve the precision of laboratory equipment"
// (Sec. 1). We model this as a fixed, per-device complex gain error on each
// element (amplitude ripple + phase offset) plus optionally dead elements.
// The errors are drawn once per device and then stay fixed, like a real
// miscalibrated front-end.
#pragma once

#include <cstdint>
#include <vector>

#include "src/antenna/geometry.hpp"
#include "src/antenna/weights.hpp"

namespace talon {

struct CalibrationErrorConfig {
  /// Std-dev of the per-element amplitude error [dB].
  double amplitude_stddev_db{0.7};
  /// Std-dev of the per-element phase error [deg].
  double phase_stddev_deg{12.0};
  /// Probability that an element is dead (open/short in the RF chain).
  double dead_element_probability{0.0};
  /// Per-device seed.
  std::uint64_t device_seed{1};
};

class CalibrationErrors {
 public:
  CalibrationErrors(std::size_t element_count, const CalibrationErrorConfig& config);

  std::size_t element_count() const { return errors_.size(); }

  /// Multiplicative complex error per element (0 for dead elements).
  const WeightVector& errors() const { return errors_; }

  /// Element-wise product of `weights` with the device's errors:
  /// the excitation the hardware actually realizes.
  WeightVector apply(const WeightVector& weights) const;

 private:
  WeightVector errors_;
};

/// Electromagnetic mutual coupling between neighbouring patch elements:
/// part of each element's excitation leaks into its lattice neighbours
/// (w' = (I + c A) w with A the 4-neighbour adjacency). Densely packed
/// consumer arrays couple strongly, another reason measured patterns
/// deviate from geometry-only theory.
struct MutualCouplingConfig {
  /// Coupling magnitude to each adjacent element [dB] (typ. -15 to -25).
  double adjacent_coupling_db{-20.0};
  /// Phase of the coupled leakage [deg] (near-field coupling is roughly
  /// quadrature for lambda/2 spacing).
  double coupling_phase_deg{90.0};
};

class MutualCoupling {
 public:
  MutualCoupling(const PlanarArrayGeometry& geometry,
                 const MutualCouplingConfig& config);

  std::size_t element_count() const { return neighbours_.size(); }

  /// w' = w + c * sum(neighbour weights): the excitation the array
  /// actually radiates.
  WeightVector apply(const WeightVector& weights) const;

 private:
  Complex coupling_;
  /// Per element, the indices of its lattice neighbours.
  std::vector<std::vector<std::size_t>> neighbours_;
};

}  // namespace talon
