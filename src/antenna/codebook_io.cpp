#include "src/antenna/codebook_io.hpp"

#include <cmath>

#include "src/common/angles.hpp"
#include "src/common/error.hpp"

namespace talon {

namespace {

constexpr char kMagic[4] = {'T', 'L', 'N', 'C'};
constexpr std::uint16_t kVersion = 1;

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v & 0xFF));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_i16(std::vector<std::uint8_t>& out, std::int16_t v) {
  put_u16(out, static_cast<std::uint16_t>(v));
}

class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> blob) : blob_(blob) {}

  std::uint8_t u8() {
    require(1);
    return blob_[pos_++];
  }
  std::uint16_t u16() {
    require(2);
    const std::uint16_t v = static_cast<std::uint16_t>(
        blob_[pos_] | (static_cast<std::uint16_t>(blob_[pos_ + 1]) << 8));
    pos_ += 2;
    return v;
  }
  std::int16_t i16() { return static_cast<std::int16_t>(u16()); }
  bool exhausted() const { return pos_ == blob_.size(); }

 private:
  void require(std::size_t n) {
    if (pos_ + n > blob_.size()) throw ParseError("codebook blob truncated");
  }
  std::span<const std::uint8_t> blob_;
  std::size_t pos_{0};
};

}  // namespace

std::vector<std::uint8_t> serialize_codebook(const Codebook& codebook,
                                             const PlanarArrayGeometry& geometry,
                                             int phase_states, int amplitude_states) {
  TALON_EXPECTS(phase_states >= 2 && phase_states <= 256);
  TALON_EXPECTS(amplitude_states >= 1 && amplitude_states <= 255);
  TALON_EXPECTS(geometry.cols() <= 255 && geometry.rows() <= 255);

  std::vector<std::uint8_t> out;
  out.reserve(12 + codebook.size() * (5 + 2 * geometry.element_count()));
  for (char c : kMagic) out.push_back(static_cast<std::uint8_t>(c));
  put_u16(out, kVersion);
  put_u16(out, static_cast<std::uint16_t>(codebook.size()));
  out.push_back(static_cast<std::uint8_t>(geometry.cols()));
  out.push_back(static_cast<std::uint8_t>(geometry.rows()));
  out.push_back(static_cast<std::uint8_t>(phase_states == 256 ? 0 : phase_states));
  out.push_back(static_cast<std::uint8_t>(amplitude_states));

  const double phase_step = 2.0 * kPi / phase_states;
  const double amp_step = 1.0 / amplitude_states;
  for (const Sector& s : codebook.sectors()) {
    TALON_EXPECTS(s.weights.size() == geometry.element_count());
    out.push_back(static_cast<std::uint8_t>(s.id));
    put_i16(out, static_cast<std::int16_t>(
                     std::lround(wrap_azimuth_deg(s.nominal.azimuth_deg) * 10.0)));
    put_i16(out, static_cast<std::int16_t>(std::lround(s.nominal.elevation_deg * 10.0)));
    for (const Complex& w : s.weights) {
      const double amp = std::abs(w);
      const auto amp_code =
          static_cast<long>(std::lround(std::min(amp, 1.0) / amp_step));
      if (amp_code <= 0) {
        out.push_back(0);  // element off
        out.push_back(0);
        continue;
      }
      long phase_code = std::lround(std::arg(w) / phase_step);
      phase_code = ((phase_code % phase_states) + phase_states) % phase_states;
      out.push_back(static_cast<std::uint8_t>(amp_code));
      out.push_back(static_cast<std::uint8_t>(phase_code));
    }
  }
  return out;
}

ParsedCodebook parse_codebook(std::span<const std::uint8_t> blob) {
  Reader r(blob);
  for (char c : kMagic) {
    if (r.u8() != static_cast<std::uint8_t>(c)) {
      throw ParseError("codebook blob: bad magic");
    }
  }
  if (r.u16() != kVersion) throw ParseError("codebook blob: unsupported version");
  const std::uint16_t sector_count = r.u16();
  if (sector_count == 0) throw ParseError("codebook blob: no sectors");
  const std::size_t cols = r.u8();
  const std::size_t rows = r.u8();
  if (cols == 0 || rows == 0) throw ParseError("codebook blob: bad geometry");
  const std::uint8_t phase_raw = r.u8();
  const int phase_states = phase_raw == 0 ? 256 : phase_raw;
  if (phase_states < 2) throw ParseError("codebook blob: bad phase states");
  const int amplitude_states = r.u8();
  if (amplitude_states < 1) throw ParseError("codebook blob: bad amplitude states");

  const double phase_step = 2.0 * kPi / phase_states;
  const double amp_step = 1.0 / amplitude_states;
  std::vector<Sector> sectors;
  sectors.reserve(sector_count);
  for (std::uint16_t i = 0; i < sector_count; ++i) {
    Sector s;
    s.id = r.u8();
    s.nominal.azimuth_deg = r.i16() / 10.0;
    s.nominal.elevation_deg = r.i16() / 10.0;
    s.weights.reserve(cols * rows);
    for (std::size_t e = 0; e < cols * rows; ++e) {
      const std::uint8_t amp_code = r.u8();
      const std::uint8_t phase_code = r.u8();
      if (amp_code == 0) {
        s.weights.emplace_back(0.0, 0.0);
        continue;
      }
      if (amp_code > amplitude_states) {
        throw ParseError("codebook blob: amplitude code out of range");
      }
      if (phase_code >= phase_states) {
        throw ParseError("codebook blob: phase code out of range");
      }
      const double amp = amp_code * amp_step;
      const double phase = phase_code * phase_step;
      s.weights.emplace_back(amp * std::cos(phase), amp * std::sin(phase));
    }
    sectors.push_back(std::move(s));
  }
  if (!r.exhausted()) throw ParseError("codebook blob: trailing bytes");

  return ParsedCodebook{
      .codebook = Codebook(std::move(sectors)),
      .cols = cols,
      .rows = rows,
      .phase_states = phase_states,
      .amplitude_states = amplitude_states,
  };
}

}  // namespace talon
