// Single-element radiation model plus chassis effects.
//
// Sec. 4.2/4.4: "the packaging and placement of the antenna inside a device
// influences the radiation characteristics" and "in the direction behind
// the antenna -- for angles higher than +-120 deg -- we observe distorted
// patterns ... the antenna array is partially blocked by a chip and
// shielded in this direction". ElementModel captures both: a broad
// patch-like element pattern and a deterministic per-device chassis
// shadowing with ripple behind the array.
#pragma once

#include <cstdint>
#include <vector>

#include "src/common/angles.hpp"

namespace talon {

struct ElementModelConfig {
  /// Exponent of the cos^q element pattern (q ~ 1.2 for a wide patch).
  double pattern_exponent{1.2};
  /// Residual back-lobe level relative to element peak [dB].
  double backlobe_floor_db{-18.0};
  /// Azimuth beyond which chassis shadowing sets in [deg] (paper: ~120).
  double chassis_shadow_start_deg{120.0};
  /// Mean extra attenuation deep inside the shadow region [dB].
  double chassis_shadow_depth_db{14.0};
  /// Peak-to-peak amplitude of the pseudo-random shadow ripple [dB]
  /// ("distorted patterns" behind the device).
  double chassis_ripple_db{6.0};
  /// Per-device seed for the ripple; two devices with different seeds have
  /// slightly different chassis distortion ("other Talon AD7200 devices
  /// might behave differently", Sec. 4.5).
  std::uint64_t device_seed{1};
};

class ElementModel {
 public:
  explicit ElementModel(const ElementModelConfig& config);

  /// Element gain [dBi] toward a direction in the device frame.
  /// Includes the chassis shadowing/ripple.
  double gain_dbi(const Direction& dir) const;

  const ElementModelConfig& config() const { return config_; }

 private:
  double chassis_attenuation_db(const Direction& dir) const;

  ElementModelConfig config_;
  /// Fixed Fourier coefficients of the ripple, derived from device_seed.
  std::vector<double> ripple_amp_;
  std::vector<double> ripple_phase_;
};

}  // namespace talon
