// Binary codebook marshalling.
//
// On the real QCA9500 the sector definitions live in a packed binary blob
// inside the firmware image (the wil6210 "board file"); talon-tools reads
// and rewrites it to experiment with custom sectors. This codec is that
// format's equivalent: a compact, versioned layout holding per-element
// amplitude/phase *codes* at the hardware's register resolution, exactly
// what a phase-shifter bank consumes.
//
// Layout (little-endian):
//   magic   "TLNC"            4 bytes
//   version u16               (currently 1)
//   sector_count u16
//   cols u8, rows u8          array geometry
//   phase_states u8           phases per turn (e.g. 4 or 16)
//   amplitude_states u8       non-zero amplitude levels (e.g. 1 or 4)
//   per sector:
//     id u8
//     nominal_azimuth_decideg  i16 (tenths of a degree)
//     nominal_elevation_decideg i16
//     per element (cols*rows):
//       amplitude_code u8     0 = element off, k = k/amplitude_states
//       phase_code u8         k = k * 2*pi/phase_states
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "src/antenna/codebook.hpp"
#include "src/antenna/geometry.hpp"

namespace talon {

struct ParsedCodebook {
  Codebook codebook;
  std::size_t cols{0};
  std::size_t rows{0};
  int phase_states{0};
  int amplitude_states{0};
};

/// Pack a codebook. Weights are snapped to the nearest register codes, so
/// a codebook generated with matching quantization round-trips exactly.
/// `phase_states` in [2, 256], `amplitude_states` in [1, 255].
std::vector<std::uint8_t> serialize_codebook(const Codebook& codebook,
                                             const PlanarArrayGeometry& geometry,
                                             int phase_states, int amplitude_states);

/// Parse a blob; throws ParseError on bad magic/version/size or invalid
/// field values.
ParsedCodebook parse_codebook(std::span<const std::uint8_t> blob);

}  // namespace talon
