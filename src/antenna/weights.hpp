// Per-element excitation weights and the coarse quantization of low-cost
// RFICs.
//
// The QCA9500 changes "phase shifts and amplitudes ... in discrete steps
// per antenna element" (Sec. 1). Consumer-grade 60 GHz front-ends use very
// coarse controls (2-bit phase shifters are typical); this coarseness is
// exactly why real sector patterns have the irregular side lobes seen in
// Fig. 5 and why the paper refuses to rely on idealized geometric patterns.
#pragma once

#include <complex>
#include <cstddef>
#include <vector>

#include "src/common/vec3.hpp"

namespace talon {

using Complex = std::complex<double>;

/// One complex excitation per array element. Elements with weight 0 are off.
using WeightVector = std::vector<Complex>;

/// Hardware quantization of a weight vector.
struct WeightQuantizer {
  /// Number of phase states (2-bit shifter -> 4). Must be >= 2.
  int phase_states{4};
  /// Number of non-zero amplitude states (1 -> on/off only). Must be >= 1.
  int amplitude_states{1};

  /// Quantize each weight: phase snaps to the nearest of `phase_states`
  /// equally spaced phases; amplitude snaps to the nearest of
  /// `amplitude_states` levels in (0, 1] (weights below half the smallest
  /// level turn the element off).
  WeightVector quantize(const WeightVector& weights) const;
};

/// Ideal (pre-quantization) steering vector for a planar array: conjugate
/// phase alignment toward `dir` with unit amplitudes.
/// `element_positions` are in wavelengths.
WeightVector steering_weights(const std::vector<Vec3>& element_positions,
                              const Direction& dir);

/// Sum of element powers sum(|w_i|^2); used to normalize array gain.
double total_weight_power(const WeightVector& weights);

}  // namespace talon
