#include "src/antenna/geometry.hpp"

#include "src/common/error.hpp"

namespace talon {

PlanarArrayGeometry::PlanarArrayGeometry(std::size_t cols, std::size_t rows,
                                         double col_spacing_wavelengths,
                                         double row_spacing_wavelengths)
    : cols_(cols),
      rows_(rows),
      col_spacing_(col_spacing_wavelengths),
      row_spacing_(row_spacing_wavelengths > 0.0 ? row_spacing_wavelengths
                                                 : col_spacing_wavelengths) {
  TALON_EXPECTS(cols_ >= 1 && rows_ >= 1);
  TALON_EXPECTS(col_spacing_ > 0.0);
  positions_.reserve(element_count());
  const double cy = static_cast<double>(cols_ - 1) / 2.0;
  const double cz = static_cast<double>(rows_ - 1) / 2.0;
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) {
      positions_.push_back(Vec3{
          0.0,
          (static_cast<double>(c) - cy) * col_spacing_,
          (static_cast<double>(r) - cz) * row_spacing_,
      });
    }
  }
}

PlanarArrayGeometry talon_array_geometry() {
  return PlanarArrayGeometry(8, 4, 0.5, 0.35);
}

}  // namespace talon
