#include "src/firmware/device.hpp"

#include "src/antenna/codebook.hpp"
#include "src/common/error.hpp"

namespace talon {

FullMacFirmware::FullMacFirmware(FirmwareConfig config)
    : config_(std::move(config)),
      patcher_(memory_),
      ring_(config_.ring_capacity),
      selected_sector_(config_.initial_selected_sector) {
  TALON_EXPECTS(config_.initial_selected_sector >= 0 &&
                config_.initial_selected_sector <= kMaxSectorId);
}

void FullMacFirmware::apply_research_patches() {
  // One shared image per process: every device applies the same read-only
  // blobs instead of materializing private copies.
  patcher_.apply(shared_sweep_info_patch());
  patcher_.apply(shared_sector_override_patch());
}

void FullMacFirmware::load_codebook_blob(std::span<const std::uint8_t> blob) {
  TALON_EXPECTS(!blob.empty());
  const std::uint32_t base = kFwDataHostBase + kCodebookOffset;
  if (!memory_.host_range_valid(base, static_cast<std::uint32_t>(blob.size()) + 4)) {
    throw StateError("codebook blob does not fit the board-file region");
  }
  const auto size = static_cast<std::uint32_t>(blob.size());
  for (int i = 0; i < 4; ++i) {
    memory_.host_write(base + static_cast<std::uint32_t>(i),
                       static_cast<std::uint8_t>((size >> (8 * i)) & 0xFF));
  }
  memory_.host_write_block(base + 4, std::vector<std::uint8_t>(blob.begin(), blob.end()));
}

std::vector<std::uint8_t> FullMacFirmware::read_codebook_blob() const {
  const std::uint32_t base = kFwDataHostBase + kCodebookOffset;
  std::uint32_t size = 0;
  for (int i = 0; i < 4; ++i) {
    size |= static_cast<std::uint32_t>(memory_.host_read(base + static_cast<std::uint32_t>(i)))
            << (8 * i);
  }
  if (size == 0 || !memory_.host_range_valid(base + 4, size)) return {};
  std::vector<std::uint8_t> blob(size);
  for (std::uint32_t i = 0; i < size; ++i) {
    blob[i] = memory_.host_read(base + 4 + i);
  }
  return blob;
}

void FullMacFirmware::begin_peer_sweep() {
  ++sweep_index_;
  sweep_active_ = true;
  best_reading_.reset();
}

void FullMacFirmware::on_ssw_frame(const SswField& field, const SectorReading& reading) {
  if (!sweep_active_) {
    throw StateError("SSW frame outside an active sweep");
  }
  TALON_EXPECTS(field.sector_id == reading.sector_id);
  if (!best_reading_ || reading.snr_db > best_reading_->snr_db) {
    best_reading_ = reading;
  }
  if (patcher_.hook_enabled(FirmwareHook::kSweepInfoRingBuffer)) {
    const SweepInfoEntry entry{
        .sweep_index = sweep_index_,
        .sector_id = reading.sector_id,
        .snr_db = reading.snr_db,
        .rssi_dbm = reading.rssi_dbm,
    };
    ring_.push(entry);
    last_entry_ = entry;
    if (fault_injector_) {
      if (fault_injector_->inject_duplicate()) ring_.push(entry);
      // Stale pollution needs material from a previous sweep; the draw
      // (and its counter) only happens when an injection can occur.
      if (stale_candidate_ && fault_injector_->inject_stale()) {
        ring_.push(*stale_candidate_);
      }
    }
  }
}

SswFeedbackField FullMacFirmware::end_peer_sweep() {
  if (!sweep_active_) {
    throw StateError("end_peer_sweep without begin_peer_sweep");
  }
  sweep_active_ = false;
  if (fault_injector_ && last_entry_ &&
      patcher_.hook_enabled(FirmwareHook::kSweepInfoRingBuffer)) {
    // Overflow burst: flood the ring with copies of the last entry so the
    // oldest real readings of this sweep are overwritten before user space
    // drains them (the "user space read too slowly" failure, forced).
    const std::size_t burst = fault_injector_->overflow_burst();
    for (std::size_t i = 0; i < burst; ++i) ring_.push(*last_entry_);
  }
  // The previous sweep's last entry becomes stale-injection material.
  stale_candidate_ = last_entry_;
  last_entry_.reset();
  // Stock behaviour: argmax over this sweep's readings; keep the previous
  // selection when the firmware reported nothing at all.
  if (best_reading_) selected_sector_ = best_reading_->sector_id;

  SswFeedbackField feedback;
  if (sector_override_ && patcher_.hook_enabled(FirmwareHook::kSectorOverride)) {
    feedback.selected_sector_id = *sector_override_;
  } else {
    feedback.selected_sector_id = selected_sector_;
  }
  if (best_reading_) feedback.snr_report_db = best_reading_->snr_db;
  return feedback;
}

void FullMacFirmware::apply_peer_feedback(const SswFeedbackField& feedback) {
  TALON_EXPECTS(feedback.selected_sector_id >= 0 &&
                feedback.selected_sector_id <= kMaxSectorId);
  own_tx_sector_ = feedback.selected_sector_id;
}

WmiResponse FullMacFirmware::handle_wmi(const WmiCommand& command) {
  WmiResponse response;
  switch (command.type) {
    case WmiCommandType::kGetFirmwareVersion:
      response.firmware_version = config_.version;
      return response;

    case WmiCommandType::kSetSectorOverride:
      if (!patcher_.hook_enabled(FirmwareHook::kSectorOverride)) {
        response.status = WmiStatus::kUnsupported;
        return response;
      }
      if (!command.sector_id || *command.sector_id < 0 ||
          *command.sector_id > kMaxSectorId) {
        response.status = WmiStatus::kInvalidArgument;
        return response;
      }
      sector_override_ = *command.sector_id;
      return response;

    case WmiCommandType::kClearSectorOverride:
      if (!patcher_.hook_enabled(FirmwareHook::kSectorOverride)) {
        response.status = WmiStatus::kUnsupported;
        return response;
      }
      sector_override_.reset();
      return response;

    case WmiCommandType::kReadSweepInfo:
      if (!patcher_.hook_enabled(FirmwareHook::kSweepInfoRingBuffer)) {
        response.status = WmiStatus::kUnsupported;
        return response;
      }
      response.entries = ring_.drain();
      return response;
  }
  response.status = WmiStatus::kInvalidArgument;
  return response;
}

}  // namespace talon
