// The simulated QCA9500 FullMAC firmware.
//
// Encapsulates what runs "inside the chip": receiving SSW frames of a
// peer's sweep, the stock sector selection (argmax over reported SNR,
// Eq. 1), and -- once the corresponding patches are applied through the
// PatchFramework -- the two research extensions of Sec. 3:
//   * every decoded SSW frame's SNR/RSSI is exported to a ring buffer
//     readable from user space (Sec. 3.3), and
//   * a WMI-settable override replaces the sector ID written into SSW
//     feedback fields (Sec. 3.4), which is how compressive selection
//     steers the peer without reimplementing the MAC.
// Without the patches, the WMI surface reports kUnsupported, matching the
// stock firmware's black-box behaviour.
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "src/common/fault.hpp"
#include "src/firmware/memory.hpp"
#include "src/firmware/patch.hpp"
#include "src/firmware/ringbuffer.hpp"
#include "src/firmware/wmi.hpp"
#include "src/mac/frames.hpp"
#include "src/phy/measurement.hpp"

namespace talon {

struct FirmwareConfig {
  /// The image the paper analyzed (extracted from Acer TravelMate laptops).
  std::string version{"3.3.3.7759"};
  std::size_t ring_capacity{256};
  /// Sector reported before any sweep completed.
  int initial_selected_sector{1};
};

class FullMacFirmware {
 public:
  explicit FullMacFirmware(FirmwareConfig config = {});

  const std::string& version() const { return config_.version; }
  ChipMemory& memory() { return memory_; }
  PatchFramework& patcher() { return patcher_; }
  const PatchFramework& patcher() const { return patcher_; }

  /// Apply both research patches (sweep info + sector override).
  void apply_research_patches();

  // --- Codebook storage (the "board file" region) ---------------------------

  /// Offset of the packed codebook within the fw-data partition.
  static constexpr std::uint32_t kCodebookOffset = 0x10000;

  /// Store a packed codebook blob (antenna/codebook_io.hpp format) in the
  /// fw-data partition, length-prefixed. Throws StateError when it does
  /// not fit the region.
  void load_codebook_blob(std::span<const std::uint8_t> blob);

  /// Read back the stored blob; empty when none was loaded.
  std::vector<std::uint8_t> read_codebook_blob() const;

  // --- Responder-side sweep handling (chip internal) -----------------------

  /// A peer starts a transmit sector sweep toward us.
  void begin_peer_sweep();

  /// One decoded SSW frame of the ongoing sweep; missed frames never reach
  /// the firmware. Requires begin_peer_sweep() first.
  void on_ssw_frame(const SswField& field, const SectorReading& reading);

  /// Close the sweep and produce the feedback field: the stock argmax
  /// selection, or the override when set (and patched).
  SswFeedbackField end_peer_sweep();

  /// The sector the firmware currently asks the peer to use.
  int selected_sector() const { return selected_sector_; }

  /// The sector this device transmits with, as instructed by the peer's
  /// feedback (updated when a received frame carries a feedback field).
  /// Defaults to the strong boresight sector 63 before any training.
  int own_tx_sector() const { return own_tx_sector_; }
  void apply_peer_feedback(const SswFeedbackField& feedback);

  std::uint32_t sweep_index() const { return sweep_index_; }

  // --- User-space surface (through the wil6210 driver) ---------------------

  WmiResponse handle_wmi(const WmiCommand& command);

  std::optional<int> sector_override() const { return sector_override_; }

  // --- fault injection (robustness campaign) --------------------------------

  /// Attach a fault injector: subsequent ring-buffer writes may be
  /// duplicated, polluted with stale entries from the previous sweep, or
  /// flooded past capacity at sweep end (the injector draws which). Null
  /// detaches. The injector models ucode-level glitches, so it only acts
  /// when the sweep-info patch is active -- the stock firmware has no ring
  /// to corrupt.
  void set_fault_injector(std::shared_ptr<LinkFaultInjector> injector) {
    fault_injector_ = std::move(injector);
  }
  const std::shared_ptr<LinkFaultInjector>& fault_injector() const {
    return fault_injector_;
  }

 private:
  FirmwareConfig config_;
  ChipMemory memory_;
  PatchFramework patcher_;
  SweepInfoRingBuffer ring_;

  std::uint32_t sweep_index_{0};
  bool sweep_active_{false};
  std::optional<SectorReading> best_reading_;  // current sweep's argmax
  std::shared_ptr<LinkFaultInjector> fault_injector_;
  /// Ring-fault material: the last entry pushed this sweep (overflow
  /// floods repeat it) and a leftover from the previous sweep (stale
  /// injection re-pushes it with its old sweep_index).
  std::optional<SweepInfoEntry> last_entry_;
  std::optional<SweepInfoEntry> stale_candidate_;
  int selected_sector_;
  int own_tx_sector_{63};
  std::optional<int> sector_override_;
};

}  // namespace talon
