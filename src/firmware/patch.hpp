// Nexmon-style firmware patch framework (Sec. 3.2).
//
// A patch is a named set of byte sections written into the chip's memory
// through the writable high mirror. The framework validates that every
// section lands inside a mapped partition, rejects overlaps with already
// applied patches, and tracks which named capabilities ("hooks") a patch
// enables -- the simulated firmware consults those hooks to decide whether
// the sweep-info ring buffer and the sector-override switch exist.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/firmware/memory.hpp"

namespace talon {

/// One contiguous block of patched bytes (code + data merged, as the
/// modified Nexmon emits for the ARC600's high addresses).
struct PatchSection {
  std::uint32_t host_addr{0};
  std::vector<std::uint8_t> bytes;
};

/// Capabilities a patch can enable in the firmware.
enum class FirmwareHook : std::uint8_t {
  kSweepInfoRingBuffer,  ///< export per-sector SNR/RSSI (Sec. 3.3)
  kSectorOverride,       ///< overwrite SSW feedback sector (Sec. 3.4)
};

std::string to_string(FirmwareHook hook);

struct FirmwarePatch {
  std::string name;
  std::vector<PatchSection> sections;
  std::vector<FirmwareHook> hooks;
};

class PatchFramework {
 public:
  explicit PatchFramework(ChipMemory& memory) : memory_(&memory) {}

  /// Apply a shared read-only patch image. The framework keeps only the
  /// shared_ptr, so N devices applying the same image hold one copy of
  /// the section bytes between them. Throws StateError when a section
  /// misses the mapped high ranges, overlaps an applied patch, or the
  /// name is already used.
  void apply(std::shared_ptr<const FirmwarePatch> patch);

  /// Convenience for one-off / test patches: copies into a private image.
  void apply(const FirmwarePatch& patch);

  bool is_applied(const std::string& name) const;
  bool hook_enabled(FirmwareHook hook) const;
  std::vector<std::string> applied_patches() const;

 private:
  struct AppliedSection {
    std::uint32_t host_addr;
    std::uint32_t size;
  };

  ChipMemory* memory_;
  std::vector<std::shared_ptr<const FirmwarePatch>> applied_;
  std::vector<AppliedSection> occupied_;
};

/// The paper's two patches. The byte payloads are representative blobs
/// placed in the patch areas of Fig. 1 (firmware patch near the end of the
/// fw code mirror, ucode patch near the end of the ucode code mirror).
FirmwarePatch make_sweep_info_patch();
FirmwarePatch make_sector_override_patch();

/// Process-wide shared images of the two research patches: built once,
/// then applied read-only by every FullMacFirmware instance instead of
/// each device materializing a private copy of the blobs.
const std::shared_ptr<const FirmwarePatch>& shared_sweep_info_patch();
const std::shared_ptr<const FirmwarePatch>& shared_sector_override_patch();

}  // namespace talon
