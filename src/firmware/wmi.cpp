#include "src/firmware/wmi.hpp"

namespace talon {

std::string to_string(WmiStatus status) {
  switch (status) {
    case WmiStatus::kOk:
      return "ok";
    case WmiStatus::kUnsupported:
      return "unsupported";
    case WmiStatus::kInvalidArgument:
      return "invalid-argument";
  }
  return "unknown";
}

}  // namespace talon
