#include "src/firmware/patch.hpp"

#include <algorithm>

#include "src/common/error.hpp"

namespace talon {

std::string to_string(FirmwareHook hook) {
  switch (hook) {
    case FirmwareHook::kSweepInfoRingBuffer:
      return "sweep-info-ring-buffer";
    case FirmwareHook::kSectorOverride:
      return "sector-override";
  }
  return "unknown";
}

void PatchFramework::apply(const FirmwarePatch& patch) {
  apply(std::make_shared<const FirmwarePatch>(patch));
}

void PatchFramework::apply(std::shared_ptr<const FirmwarePatch> shared) {
  TALON_EXPECTS(shared != nullptr);
  const FirmwarePatch& patch = *shared;
  TALON_EXPECTS(!patch.name.empty());
  TALON_EXPECTS(!patch.sections.empty());
  if (is_applied(patch.name)) {
    throw StateError("patch already applied: " + patch.name);
  }
  // Validate all sections before touching memory (atomic apply).
  for (const PatchSection& s : patch.sections) {
    if (s.bytes.empty()) throw StateError("empty patch section in " + patch.name);
    const auto size = static_cast<std::uint32_t>(s.bytes.size());
    if (!memory_->host_range_valid(s.host_addr, size)) {
      throw StateError("patch section outside mapped memory in " + patch.name);
    }
    for (const AppliedSection& a : occupied_) {
      const bool disjoint =
          s.host_addr + size <= a.host_addr || a.host_addr + a.size <= s.host_addr;
      if (!disjoint) {
        throw StateError("patch section overlaps an applied patch in " + patch.name);
      }
    }
  }
  for (const PatchSection& s : patch.sections) {
    memory_->host_write_block(s.host_addr, s.bytes);
    occupied_.push_back(
        {s.host_addr, static_cast<std::uint32_t>(s.bytes.size())});
  }
  applied_.push_back(std::move(shared));
}

bool PatchFramework::is_applied(const std::string& name) const {
  return std::any_of(
      applied_.begin(), applied_.end(),
      [&name](const std::shared_ptr<const FirmwarePatch>& p) { return p->name == name; });
}

bool PatchFramework::hook_enabled(FirmwareHook hook) const {
  for (const std::shared_ptr<const FirmwarePatch>& p : applied_) {
    if (std::find(p->hooks.begin(), p->hooks.end(), hook) != p->hooks.end()) return true;
  }
  return false;
}

std::vector<std::string> PatchFramework::applied_patches() const {
  std::vector<std::string> names;
  names.reserve(applied_.size());
  for (const std::shared_ptr<const FirmwarePatch>& p : applied_) names.push_back(p->name);
  return names;
}

namespace {
/// Deterministic stand-in for compiled patch code.
std::vector<std::uint8_t> blob(std::size_t size, std::uint8_t seed) {
  std::vector<std::uint8_t> bytes(size);
  std::uint8_t v = seed;
  for (std::uint8_t& b : bytes) {
    v = static_cast<std::uint8_t>(v * 73u + 41u);
    b = v;
  }
  return bytes;
}
}  // namespace

FirmwarePatch make_sweep_info_patch() {
  // Sector sweeps are handled in the ucode (Sec. 3.3); the hook lives in
  // the ucode patch area near the top of the ucode code mirror, with its
  // ring-buffer bookkeeping in ucode data.
  return FirmwarePatch{
      .name = "sweep-info",
      .sections =
          {
              PatchSection{kUcCodeHostBase + 0x16000, blob(512, 0x11)},
              PatchSection{kUcDataHostBase + 0x04000, blob(64, 0x22)},
          },
      .hooks = {FirmwareHook::kSweepInfoRingBuffer},
  };
}

FirmwarePatch make_sector_override_patch() {
  // The feedback-field switch sits in the MAC firmware core (Sec. 3.4).
  return FirmwarePatch{
      .name = "sector-override",
      .sections =
          {
              PatchSection{kFwCodeHostBase + 0x35000, blob(384, 0x33)},
              PatchSection{kFwDataHostBase + 0x08000, blob(16, 0x44)},
          },
      .hooks = {FirmwareHook::kSectorOverride},
  };
}

const std::shared_ptr<const FirmwarePatch>& shared_sweep_info_patch() {
  static const std::shared_ptr<const FirmwarePatch> patch =
      std::make_shared<const FirmwarePatch>(make_sweep_info_patch());
  return patch;
}

const std::shared_ptr<const FirmwarePatch>& shared_sector_override_patch() {
  static const std::shared_ptr<const FirmwarePatch> patch =
      std::make_shared<const FirmwarePatch>(make_sector_override_patch());
  return patch;
}

}  // namespace talon
