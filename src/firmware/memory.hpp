// The QCA9500's dual-ARC600 memory layout (Fig. 1 of the paper).
//
// Each processor (the real-time "ucode" core and the MAC "firmware" core)
// sees a write-protected code partition and a writable data partition at
// low addresses. All four partitions are *also* mapped into high host
// addresses, where they are writable -- the discovery that makes Nexmon
// patching possible on this chip ("code memory is also accessible at high
// memory addresses, where it is writable so that it can contain patches").
//
// Layout modeled (host view):
//   0x008c0000..0x00900000  firmware code  (mirror of fw  low 0x000000..0x040000)
//   0x00900000..0x00920000  firmware data  (mirror of fw  low 0x080000..0x0a0000)
//   0x00920000..0x00940000  ucode    code  (mirror of uc  low 0x000000..0x020000)
//   0x00940000..0x00960000  ucode    data  (mirror of uc  low 0x080000..0x0a0000)
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace talon {

enum class ChipProcessor : std::uint8_t { kFirmware, kUcode };

std::string to_string(ChipProcessor p);

/// One mapped partition.
struct MemoryRegion {
  std::string name;
  ChipProcessor processor;
  std::uint32_t low_base;   ///< processor-view base
  std::uint32_t host_base;  ///< host-view (high) base, always writable
  std::uint32_t size;
  bool low_writable;  ///< false for code partitions
};

/// Host-view addresses of the four partitions.
inline constexpr std::uint32_t kFwCodeHostBase = 0x008c0000;
inline constexpr std::uint32_t kFwDataHostBase = 0x00900000;
inline constexpr std::uint32_t kUcCodeHostBase = 0x00920000;
inline constexpr std::uint32_t kUcDataHostBase = 0x00940000;

class ChipMemory {
 public:
  /// Builds the four-partition Talon layout with zeroed contents.
  ChipMemory();

  const std::vector<MemoryRegion>& regions() const { return regions_; }

  /// Processor-view access. Reads anywhere in the processor's mapped low
  /// ranges; writes to a code partition throw StateError (write-protected),
  /// mirroring the ARC600 behaviour that defeated stock Nexmon.
  std::uint8_t read(ChipProcessor p, std::uint32_t low_addr) const;
  void write(ChipProcessor p, std::uint32_t low_addr, std::uint8_t value);

  /// Host-view access through the high mirror; always writable.
  std::uint8_t host_read(std::uint32_t host_addr) const;
  void host_write(std::uint32_t host_addr, std::uint8_t value);

  /// Bulk host write (patch application).
  void host_write_block(std::uint32_t host_addr, const std::vector<std::uint8_t>& bytes);

  /// True when [host_addr, host_addr + size) lies inside one mapped
  /// host-view partition.
  bool host_range_valid(std::uint32_t host_addr, std::uint32_t size) const;

 private:
  const MemoryRegion& region_by_low(ChipProcessor p, std::uint32_t low_addr) const;
  const MemoryRegion& region_by_host(std::uint32_t host_addr) const;
  std::vector<std::uint8_t>& backing(const MemoryRegion& r);
  const std::vector<std::uint8_t>& backing(const MemoryRegion& r) const;

  std::vector<MemoryRegion> regions_;
  std::vector<std::vector<std::uint8_t>> storage_;  // parallel to regions_
};

}  // namespace talon
