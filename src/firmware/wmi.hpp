// Wireless Module Interface (WMI) commands.
//
// The host driver talks to the QCA9500 through WMI mailbox commands; the
// paper adds "a custom Wireless Module Interface (WMI) command" to switch
// the feedback sector from user space (Sec. 3.4). We model the command
// surface the patched firmware exposes.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/firmware/ringbuffer.hpp"

namespace talon {

enum class WmiCommandType : std::uint8_t {
  kGetFirmwareVersion,
  kSetSectorOverride,    ///< force a sector ID into all SSW feedback fields
  kClearSectorOverride,  ///< return to the stock argmax selection
  kReadSweepInfo,        ///< drain the sweep-info ring buffer
};

struct WmiCommand {
  WmiCommandType type{WmiCommandType::kGetFirmwareVersion};
  /// Sector ID for kSetSectorOverride.
  std::optional<int> sector_id;
};

enum class WmiStatus : std::uint8_t {
  kOk,
  kUnsupported,      ///< required firmware patch not applied
  kInvalidArgument,  ///< e.g. sector ID out of the 6-bit range
};

std::string to_string(WmiStatus status);

struct WmiResponse {
  WmiStatus status{WmiStatus::kOk};
  std::string firmware_version;          ///< kGetFirmwareVersion
  std::vector<SweepInfoEntry> entries;   ///< kReadSweepInfo
};

}  // namespace talon
