// The sweep-info ring buffer the patched ucode fills (Sec. 3.3): one entry
// per decoded SSW frame, read out from user space through the driver.
// Fixed capacity; when user space reads too slowly the oldest entries are
// overwritten, which the driver can detect via dropped().
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace talon {

struct SweepInfoEntry {
  std::uint32_t sweep_index{0};  ///< which sweep this reading belongs to
  int sector_id{0};
  double snr_db{0.0};
  double rssi_dbm{0.0};
};

class SweepInfoRingBuffer {
 public:
  explicit SweepInfoRingBuffer(std::size_t capacity);

  std::size_t capacity() const { return buffer_.size(); }
  std::size_t size() const { return count_; }
  bool empty() const { return count_ == 0; }

  /// Total entries overwritten before being read.
  std::uint64_t dropped() const { return dropped_; }

  /// Append; overwrites the oldest unread entry when full.
  void push(const SweepInfoEntry& entry);

  /// Remove and return all entries, oldest first.
  std::vector<SweepInfoEntry> drain();

 private:
  std::vector<SweepInfoEntry> buffer_;
  std::size_t head_{0};  // next write slot
  std::size_t count_{0};
  std::uint64_t dropped_{0};
};

}  // namespace talon
