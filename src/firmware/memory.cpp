#include "src/firmware/memory.hpp"

#include "src/common/error.hpp"

namespace talon {

std::string to_string(ChipProcessor p) {
  return p == ChipProcessor::kFirmware ? "firmware" : "ucode";
}

ChipMemory::ChipMemory() {
  regions_ = {
      MemoryRegion{"fw-code", ChipProcessor::kFirmware, 0x00000000, kFwCodeHostBase,
                   0x00040000, /*low_writable=*/false},
      MemoryRegion{"fw-data", ChipProcessor::kFirmware, 0x00080000, kFwDataHostBase,
                   0x00020000, /*low_writable=*/true},
      MemoryRegion{"uc-code", ChipProcessor::kUcode, 0x00000000, kUcCodeHostBase,
                   0x00020000, /*low_writable=*/false},
      MemoryRegion{"uc-data", ChipProcessor::kUcode, 0x00080000, kUcDataHostBase,
                   0x00020000, /*low_writable=*/true},
  };
  storage_.reserve(regions_.size());
  for (const MemoryRegion& r : regions_) {
    storage_.emplace_back(r.size, std::uint8_t{0});
  }
}

const MemoryRegion& ChipMemory::region_by_low(ChipProcessor p,
                                              std::uint32_t low_addr) const {
  for (const MemoryRegion& r : regions_) {
    if (r.processor == p && low_addr >= r.low_base && low_addr < r.low_base + r.size) {
      return r;
    }
  }
  throw StateError("unmapped " + to_string(p) + " low address " +
                   std::to_string(low_addr));
}

const MemoryRegion& ChipMemory::region_by_host(std::uint32_t host_addr) const {
  for (const MemoryRegion& r : regions_) {
    if (host_addr >= r.host_base && host_addr < r.host_base + r.size) return r;
  }
  throw StateError("unmapped host address " + std::to_string(host_addr));
}

std::vector<std::uint8_t>& ChipMemory::backing(const MemoryRegion& r) {
  return storage_[static_cast<std::size_t>(&r - regions_.data())];
}

const std::vector<std::uint8_t>& ChipMemory::backing(const MemoryRegion& r) const {
  return storage_[static_cast<std::size_t>(&r - regions_.data())];
}

std::uint8_t ChipMemory::read(ChipProcessor p, std::uint32_t low_addr) const {
  const MemoryRegion& r = region_by_low(p, low_addr);
  return backing(r)[low_addr - r.low_base];
}

void ChipMemory::write(ChipProcessor p, std::uint32_t low_addr, std::uint8_t value) {
  const MemoryRegion& r = region_by_low(p, low_addr);
  if (!r.low_writable) {
    throw StateError("write to write-protected region " + r.name +
                     " at low address " + std::to_string(low_addr));
  }
  backing(r)[low_addr - r.low_base] = value;
}

std::uint8_t ChipMemory::host_read(std::uint32_t host_addr) const {
  const MemoryRegion& r = region_by_host(host_addr);
  return backing(r)[host_addr - r.host_base];
}

void ChipMemory::host_write(std::uint32_t host_addr, std::uint8_t value) {
  const MemoryRegion& r = region_by_host(host_addr);
  backing(r)[host_addr - r.host_base] = value;
}

void ChipMemory::host_write_block(std::uint32_t host_addr,
                                  const std::vector<std::uint8_t>& bytes) {
  TALON_EXPECTS(!bytes.empty());
  if (!host_range_valid(host_addr, static_cast<std::uint32_t>(bytes.size()))) {
    throw StateError("patch block crosses partition boundary at host address " +
                     std::to_string(host_addr));
  }
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    host_write(host_addr + static_cast<std::uint32_t>(i), bytes[i]);
  }
}

bool ChipMemory::host_range_valid(std::uint32_t host_addr, std::uint32_t size) const {
  if (size == 0) return false;
  for (const MemoryRegion& r : regions_) {
    if (host_addr >= r.host_base && host_addr + size <= r.host_base + r.size) {
      return true;
    }
  }
  return false;
}

}  // namespace talon
