#include "src/firmware/ringbuffer.hpp"

#include "src/common/error.hpp"

namespace talon {

SweepInfoRingBuffer::SweepInfoRingBuffer(std::size_t capacity) : buffer_(capacity) {
  TALON_EXPECTS(capacity > 0);
}

void SweepInfoRingBuffer::push(const SweepInfoEntry& entry) {
  buffer_[head_] = entry;
  head_ = (head_ + 1) % buffer_.size();
  if (count_ == buffer_.size()) {
    ++dropped_;  // overwrote the oldest unread entry
  } else {
    ++count_;
  }
}

std::vector<SweepInfoEntry> SweepInfoRingBuffer::drain() {
  std::vector<SweepInfoEntry> out;
  out.reserve(count_);
  const std::size_t start = (head_ + buffer_.size() - count_) % buffer_.size();
  for (std::size_t i = 0; i < count_; ++i) {
    out.push_back(buffer_[(start + i) % buffer_.size()]);
  }
  count_ = 0;
  return out;
}

}  // namespace talon
