#include "src/mac/timing.hpp"

#include "src/common/error.hpp"

namespace talon {

double TimingModel::burst_time_us(int probes) const {
  TALON_EXPECTS(probes >= 0);
  return ssw_frame_us * probes;
}

double TimingModel::mutual_training_time_ms(int probes_per_side) const {
  TALON_EXPECTS(probes_per_side >= 1);
  return (2.0 * burst_time_us(probes_per_side) + training_overhead_us) / 1000.0;
}

double TimingModel::speedup_vs_full_sweep(int probes_per_side) const {
  return mutual_training_time_ms(kFullSweepProbes) /
         mutual_training_time_ms(probes_per_side);
}

}  // namespace talon
