#include "src/mac/frames.hpp"

namespace talon {

std::string to_string(FrameType type) {
  switch (type) {
    case FrameType::kBeacon:
      return "beacon";
    case FrameType::kSectorSweep:
      return "ssw";
    case FrameType::kSswFeedback:
      return "ssw-feedback";
    case FrameType::kSswAck:
      return "ssw-ack";
  }
  return "unknown";
}

}  // namespace talon
