#include "src/mac/frames.hpp"

#include <algorithm>
#include <cmath>

#include "src/common/error.hpp"

namespace talon {

namespace {

// SSW field bit offsets (24-bit field, bit 0 first on air).
constexpr std::uint32_t kSswDirectionBit = 0;
constexpr std::uint32_t kSswCdownShift = 1;    // 9 bits
constexpr std::uint32_t kSswSectorShift = 10;  // 6 bits
constexpr std::uint32_t kSswAntennaShift = 16; // 2 bits
constexpr std::uint32_t kSswRxssShift = 18;    // 6 bits

// SSW feedback field bit offsets (ISS form).
constexpr std::uint32_t kFbSectorShift = 0;    // 6 bits
constexpr std::uint32_t kFbAntennaShift = 6;   // 2 bits
constexpr std::uint32_t kFbSnrShift = 8;       // 8 bits
constexpr std::uint32_t kFbPollBit = 16;
// bits 17..23 reserved

// SNR report quantization (802.11ad Table 8-183g): 0.25 dB steps from
// -8 dB, so code 0 = -8 dB and code 255 = 55.75 dB.
constexpr double kSnrReportStepDb = 0.25;
constexpr double kSnrReportOffsetDb = -8.0;

std::uint32_t quantize_snr_report(double snr_db) {
  const double code = std::round((snr_db - kSnrReportOffsetDb) / kSnrReportStepDb);
  return static_cast<std::uint32_t>(std::clamp(code, 0.0, 255.0));
}

}  // namespace

std::uint32_t encode_ssw_field(const SswField& field) {
  TALON_EXPECTS(field.cdown >= 0 && field.cdown < (1 << 9));
  TALON_EXPECTS(field.sector_id >= 0 && field.sector_id < (1 << 6));
  std::uint32_t bits = 0;
  // Direction: 0 = initiator (beamforming initiator transmitted the frame).
  if (!field.is_initiator) bits |= 1u << kSswDirectionBit;
  bits |= static_cast<std::uint32_t>(field.cdown) << kSswCdownShift;
  bits |= static_cast<std::uint32_t>(field.sector_id) << kSswSectorShift;
  return bits;
}

SswField decode_ssw_field(std::uint32_t bits) {
  if (bits >> 24 != 0) {
    throw ParseError("SSW field: more than 24 bits set");
  }
  if ((bits >> kSswAntennaShift & 0x3u) != 0) {
    throw ParseError("SSW field: non-zero DMG antenna ID on a single-antenna device");
  }
  if ((bits >> kSswRxssShift & 0x3Fu) != 0) {
    throw ParseError("SSW field: non-zero RXSS length (receive sweeps not modeled)");
  }
  SswField field;
  field.is_initiator = (bits >> kSswDirectionBit & 0x1u) == 0;
  field.cdown = static_cast<int>(bits >> kSswCdownShift & 0x1FFu);
  field.sector_id = static_cast<int>(bits >> kSswSectorShift & 0x3Fu);
  return field;
}

std::uint32_t encode_ssw_feedback_field(const SswFeedbackField& field) {
  TALON_EXPECTS(field.selected_sector_id >= 0 && field.selected_sector_id < (1 << 6));
  std::uint32_t bits =
      static_cast<std::uint32_t>(field.selected_sector_id) << kFbSectorShift;
  if (field.snr_report_db) {
    bits |= quantize_snr_report(*field.snr_report_db) << kFbSnrShift;
  } else {
    bits |= 1u << kFbPollBit;  // no measurement to report: ask to be polled
  }
  return bits;
}

SswFeedbackField decode_ssw_feedback_field(std::uint32_t bits) {
  if (bits >> 24 != 0) {
    throw ParseError("SSW feedback field: more than 24 bits set");
  }
  if ((bits >> 17) != 0) {
    throw ParseError("SSW feedback field: reserved bits set");
  }
  if ((bits >> kFbAntennaShift & 0x3u) != 0) {
    throw ParseError(
        "SSW feedback field: non-zero DMG antenna select on a single-antenna device");
  }
  SswFeedbackField field;
  field.selected_sector_id = static_cast<int>(bits >> kFbSectorShift & 0x3Fu);
  const bool poll = (bits >> kFbPollBit & 0x1u) != 0;
  if (!poll) {
    const auto code = static_cast<double>(bits >> kFbSnrShift & 0xFFu);
    field.snr_report_db = kSnrReportOffsetDb + code * kSnrReportStepDb;
  }
  return field;
}

std::string to_string(FrameType type) {
  switch (type) {
    case FrameType::kBeacon:
      return "beacon";
    case FrameType::kSectorSweep:
      return "ssw";
    case FrameType::kSswFeedback:
      return "ssw-feedback";
    case FrameType::kSswAck:
      return "ssw-ack";
  }
  return "unknown";
}

}  // namespace talon
