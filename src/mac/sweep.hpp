// The full bidirectional transmit sector sweep (TXSS) of IEEE 802.11ad
// (Sec. 2.1/4.1): initiator sweep -> responder sweep (carrying feedback for
// the initiator) -> SSW-Feedback (carrying feedback for the responder) ->
// SSW-ACK. This header models the frame-level state machine and the
// timeline; the physical delivery of each frame is delegated to a
// transport callback so the same machine runs over the simulated channel
// (sim/linksim) or in unit tests with scripted losses.
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "src/mac/frames.hpp"
#include "src/mac/schedule.hpp"
#include "src/mac/timing.hpp"

namespace talon {

/// Phases of a mutual TXSS, in protocol order.
enum class SweepPhase : std::uint8_t {
  kIdle,
  kInitiatorSweep,
  kResponderSweep,
  kFeedback,
  kAck,
  kDone,
  kFailed,
};

std::string to_string(SweepPhase phase);

/// Outcome of one completed mutual training.
struct MutualTrainingResult {
  bool success{false};
  /// The initiator's TX sector (selected by the responder, sent in the
  /// responder's SSW frames' feedback field).
  std::optional<int> initiator_sector;
  /// The responder's TX sector (selected by the initiator, sent in the
  /// SSW-Feedback frame).
  std::optional<int> responder_sector;
  /// Total protocol airtime [us], from the timing model.
  double airtime_us{0.0};
  /// Frames generated per phase (diagnostics).
  int initiator_frames{0};
  int responder_frames{0};
};

/// Drives the four TXSS phases over an abstract transport.
///
/// The transport delivers one management frame from one side to the other
/// and returns false when the frame is lost. Sector-level measurement and
/// selection stay with the caller: the session asks the `*_select`
/// callbacks for the feedback content after each sweep, mirroring how the
/// firmware computes (or, patched, overrides) the selection.
class MutualTrainingSession {
 public:
  struct Callbacks {
    /// Deliver one SSW frame of the initiator's sweep; false = lost.
    std::function<bool(const Frame&)> deliver_to_responder;
    /// Deliver one frame of the responder's sweep / ACK; false = lost.
    std::function<bool(const Frame&)> deliver_to_initiator;
    /// Responder's selection for the initiator after the initiator sweep.
    std::function<SswFeedbackField()> responder_select;
    /// Initiator's selection for the responder after the responder sweep.
    std::function<SswFeedbackField()> initiator_select;
  };

  MutualTrainingSession(std::vector<BurstSlot> initiator_schedule,
                        std::vector<BurstSlot> responder_schedule,
                        TimingModel timing, Callbacks callbacks);

  /// Run the whole exchange. The protocol fails when an entire sweep is
  /// lost or when the feedback/ACK frames are lost (802.11ad then retries
  /// in a later beacon interval; the session reports kFailed).
  MutualTrainingResult run();

  SweepPhase phase() const { return phase_; }

 private:
  /// Transmit one schedule; returns delivered-frame count.
  int run_sweep(const std::vector<BurstSlot>& schedule, bool initiator,
                const std::optional<SswFeedbackField>& feedback,
                double start_us,
                const std::function<bool(const Frame&)>& deliver);

  std::vector<BurstSlot> initiator_schedule_;
  std::vector<BurstSlot> responder_schedule_;
  TimingModel timing_;
  Callbacks callbacks_;
  SweepPhase phase_{SweepPhase::kIdle};
};

}  // namespace talon
