#include "src/mac/sweep.hpp"

#include "src/common/error.hpp"

namespace talon {

std::string to_string(SweepPhase phase) {
  switch (phase) {
    case SweepPhase::kIdle:
      return "idle";
    case SweepPhase::kInitiatorSweep:
      return "initiator-sweep";
    case SweepPhase::kResponderSweep:
      return "responder-sweep";
    case SweepPhase::kFeedback:
      return "feedback";
    case SweepPhase::kAck:
      return "ack";
    case SweepPhase::kDone:
      return "done";
    case SweepPhase::kFailed:
      return "failed";
  }
  return "unknown";
}

MutualTrainingSession::MutualTrainingSession(std::vector<BurstSlot> initiator_schedule,
                                             std::vector<BurstSlot> responder_schedule,
                                             TimingModel timing, Callbacks callbacks)
    : initiator_schedule_(std::move(initiator_schedule)),
      responder_schedule_(std::move(responder_schedule)),
      timing_(timing),
      callbacks_(std::move(callbacks)) {
  TALON_EXPECTS(static_cast<bool>(callbacks_.deliver_to_responder));
  TALON_EXPECTS(static_cast<bool>(callbacks_.deliver_to_initiator));
  TALON_EXPECTS(static_cast<bool>(callbacks_.responder_select));
  TALON_EXPECTS(static_cast<bool>(callbacks_.initiator_select));
}

int MutualTrainingSession::run_sweep(
    const std::vector<BurstSlot>& schedule, bool initiator,
    const std::optional<SswFeedbackField>& feedback, double start_us,
    const std::function<bool(const Frame&)>& deliver) {
  int delivered = 0;
  int slot_index = 0;
  for (const BurstSlot& slot : schedule) {
    ++slot_index;
    if (!slot.sector_id) continue;
    Frame frame{
        .type = FrameType::kSectorSweep,
        .source_node = initiator ? 0 : 1,
        .tx_time_us = start_us + timing_.ssw_frame_us * (slot_index - 1),
        .ssw = SswField{.cdown = slot.cdown,
                        .sector_id = *slot.sector_id,
                        .is_initiator = initiator},
        .feedback = feedback,
    };
    if (deliver(frame)) ++delivered;
  }
  return delivered;
}

MutualTrainingResult MutualTrainingSession::run() {
  TALON_EXPECTS(phase_ == SweepPhase::kIdle);
  MutualTrainingResult result;

  // --- Initiator TXSS -------------------------------------------------------
  phase_ = SweepPhase::kInitiatorSweep;
  const double i_sweep_us =
      timing_.burst_time_us(static_cast<int>(initiator_schedule_.size()));
  result.initiator_frames = run_sweep(initiator_schedule_, /*initiator=*/true,
                                      std::nullopt, 0.0,
                                      callbacks_.deliver_to_responder);
  if (result.initiator_frames == 0) {
    phase_ = SweepPhase::kFailed;
    return result;
  }

  // --- Responder TXSS (its SSW frames carry the initiator's feedback) -------
  phase_ = SweepPhase::kResponderSweep;
  const SswFeedbackField initiator_feedback = callbacks_.responder_select();
  result.responder_frames = run_sweep(responder_schedule_, /*initiator=*/false,
                                      initiator_feedback, i_sweep_us,
                                      callbacks_.deliver_to_initiator);
  if (result.responder_frames == 0) {
    phase_ = SweepPhase::kFailed;
    return result;
  }
  result.initiator_sector = initiator_feedback.selected_sector_id;

  // --- SSW-Feedback (initiator -> responder) --------------------------------
  phase_ = SweepPhase::kFeedback;
  const SswFeedbackField responder_feedback = callbacks_.initiator_select();
  const Frame feedback_frame{
      .type = FrameType::kSswFeedback,
      .source_node = 0,
      .tx_time_us = i_sweep_us +
                    timing_.burst_time_us(static_cast<int>(responder_schedule_.size())),
      .feedback = responder_feedback,
  };
  if (!callbacks_.deliver_to_responder(feedback_frame)) {
    phase_ = SweepPhase::kFailed;
    return result;
  }
  result.responder_sector = responder_feedback.selected_sector_id;

  // --- SSW-ACK (responder -> initiator) --------------------------------------
  phase_ = SweepPhase::kAck;
  const Frame ack_frame{
      .type = FrameType::kSswAck,
      .source_node = 1,
      .tx_time_us = feedback_frame.tx_time_us + timing_.training_overhead_us / 2.0,
      .feedback = initiator_feedback,
  };
  if (!callbacks_.deliver_to_initiator(ack_frame)) {
    phase_ = SweepPhase::kFailed;
    return result;
  }

  phase_ = SweepPhase::kDone;
  result.success = true;
  // Airtime per the Fig. 10 model: both sweeps' probe frames plus the
  // constant initialization/feedback overhead.
  int probes = 0;
  for (const BurstSlot& s : initiator_schedule_) {
    if (s.sector_id) ++probes;
  }
  result.airtime_us = 2.0 * timing_.burst_time_us(probes) + timing_.training_overhead_us;
  return result;
}

}  // namespace talon
