#include "src/mac/monitor.hpp"

namespace talon {

void MonitorCapture::capture(const Frame& frame) { frames_.push_back(frame); }

std::map<int, std::set<int>> MonitorCapture::cdown_to_sectors(FrameType type) const {
  std::map<int, std::set<int>> out;
  for (const Frame& f : frames_) {
    if (f.type != type || !f.ssw) continue;
    out[f.ssw->cdown].insert(f.ssw->sector_id);
  }
  return out;
}

bool MonitorCapture::schedule_is_constant(FrameType type) const {
  for (const auto& [cdown, sectors] : cdown_to_sectors(type)) {
    if (sectors.size() > 1) return false;
  }
  return true;
}

}  // namespace talon
