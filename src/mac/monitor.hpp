// Monitor-mode frame capture (the paper's third Talon running tcpdump,
// Sec. 4.1): records beacon/SSW frames and summarizes which sector ID was
// observed at each CDOWN value -- exactly the analysis that produced
// Table 1.
#pragma once

#include <map>
#include <optional>
#include <set>
#include <vector>

#include "src/mac/frames.hpp"

namespace talon {

class MonitorCapture {
 public:
  /// Record one overheard frame.
  void capture(const Frame& frame);

  std::size_t frame_count() const { return frames_.size(); }
  const std::vector<Frame>& frames() const { return frames_; }

  /// Table-1-style summary for one frame type: CDOWN -> sector IDs seen.
  /// CDOWN values at which no frame was ever captured are absent
  /// (the "-" slots of Table 1).
  std::map<int, std::set<int>> cdown_to_sectors(FrameType type) const;

  /// True when, for this frame type, each observed CDOWN value always
  /// carried the same sector ID ("sector sweeping settings stay constant
  /// over time").
  bool schedule_is_constant(FrameType type) const;

  void clear() { frames_.clear(); }

 private:
  std::vector<Frame> frames_;
};

}  // namespace talon
