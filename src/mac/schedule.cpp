#include "src/mac/schedule.hpp"

#include <algorithm>
#include <array>

namespace talon {

namespace {

constexpr int kBurstSlots = 35;  // CDOWN 34..0

std::array<BurstSlot, kBurstSlots> build_beacon_schedule() {
  std::array<BurstSlot, kBurstSlots> slots{};
  for (int i = 0; i < kBurstSlots; ++i) {
    const int cdown = 34 - i;
    slots[static_cast<std::size_t>(i)] = BurstSlot{cdown, std::nullopt};
    if (cdown == 33) {
      slots[static_cast<std::size_t>(i)].sector_id = 63;
    } else if (cdown >= 1 && cdown <= 31) {
      // CDOWN 31 -> sector 1, ..., CDOWN 1 -> sector 31.
      slots[static_cast<std::size_t>(i)].sector_id = 32 - cdown;
    }
  }
  return slots;
}

std::array<BurstSlot, kBurstSlots> build_sweep_schedule() {
  std::array<BurstSlot, kBurstSlots> slots{};
  for (int i = 0; i < kBurstSlots; ++i) {
    const int cdown = 34 - i;
    slots[static_cast<std::size_t>(i)] = BurstSlot{cdown, std::nullopt};
    if (cdown >= 4) {
      // CDOWN 34 -> sector 1, ..., CDOWN 4 -> sector 31.
      slots[static_cast<std::size_t>(i)].sector_id = 35 - cdown;
    } else if (cdown == 2) {
      slots[static_cast<std::size_t>(i)].sector_id = 61;
    } else if (cdown == 1) {
      slots[static_cast<std::size_t>(i)].sector_id = 62;
    } else if (cdown == 0) {
      slots[static_cast<std::size_t>(i)].sector_id = 63;
    }
  }
  return slots;
}

const std::array<BurstSlot, kBurstSlots> kBeaconSchedule = build_beacon_schedule();
const std::array<BurstSlot, kBurstSlots> kSweepSchedule = build_sweep_schedule();

}  // namespace

std::span<const BurstSlot> beacon_burst_schedule() { return kBeaconSchedule; }

std::span<const BurstSlot> sweep_burst_schedule() { return kSweepSchedule; }

std::vector<BurstSlot> probing_burst_schedule(std::span<const int> probe_sectors) {
  std::vector<BurstSlot> out(kSweepSchedule.begin(), kSweepSchedule.end());
  for (BurstSlot& slot : out) {
    if (!slot.sector_id) continue;
    const bool keep = std::find(probe_sectors.begin(), probe_sectors.end(),
                                *slot.sector_id) != probe_sectors.end();
    if (!keep) slot.sector_id = std::nullopt;
  }
  return out;
}

}  // namespace talon
