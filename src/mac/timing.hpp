// Beam-training timing model (Sec. 4.1 / 6.4, Fig. 10).
//
// Measured constants from the paper: a sweep frame takes 18.0 us,
// initialization + feedback + acknowledgment add 49.1 us, beacons fire
// every 102.4 ms and sweeps at least once per second. Mutual training of
// M probing sectors then costs 2*M*18.0 us + 49.1 us: 1.27 ms for the
// full 34-sector sweep, 0.55 ms for CSS with 14 probes -- the 2.3x
// headline speedup.
#pragma once

namespace talon {

struct TimingModel {
  double ssw_frame_us{18.0};
  double training_overhead_us{49.1};
  double beacon_interval_ms{102.4};
  double sweep_interval_s{1.0};

  /// One-directional burst airtime for `probes` transmitted frames [us].
  double burst_time_us(int probes) const;

  /// Mutual (both directions) transmit-sector training time [ms].
  double mutual_training_time_ms(int probes_per_side) const;

  /// Speedup of training with `probes` sectors vs the full 34-sector sweep.
  double speedup_vs_full_sweep(int probes_per_side) const;
};

/// Number of TX sectors probed by the stock full sweep (Table 1).
inline constexpr int kFullSweepProbes = 34;

}  // namespace talon
