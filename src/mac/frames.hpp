// IEEE 802.11ad management frames relevant to beam training.
//
// Only the fields the paper's firmware patches touch are modeled: the
// sector sweep (SSW) field carried in beacon and SSW frames (sector ID +
// CDOWN countdown, Sec. 4.1) and the sweep feedback field carried in SSW /
// SSW-Feedback / SSW-ACK frames whose "selected sector" the patch
// overwrites (Sec. 3.4).
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace talon {

enum class FrameType : std::uint8_t {
  kBeacon,        // DMG beacon, swept over beacon sectors
  kSectorSweep,   // SSW frame within a TXSS burst
  kSswFeedback,   // initiator -> responder after responder sweep
  kSswAck,        // responder -> initiator, completes training
};

std::string to_string(FrameType type);

/// The SSW field present in beacon and SSW frames (IEEE 802.11ad 8.4a.1).
struct SswField {
  /// Remaining frames in this burst ("decreasing counter CDOWN").
  int cdown{0};
  /// Sector used to transmit this frame (6 bits on the air).
  int sector_id{0};
  /// True when sent by the link initiator.
  bool is_initiator{true};
};

/// The sweep feedback field (the "sector select" the firmware patch
/// overwrites).
struct SswFeedbackField {
  /// The sector the sender asks its peer to transmit with.
  int selected_sector_id{0};
  /// SNR report accompanying the selection (optional in the standard).
  std::optional<double> snr_report_db;
};

// --- on-air (de)serialization ----------------------------------------------
// The 802.11ad bit layouts of the two fields the patches rewrite, so tests
// (and a future packet-capture import) can check what actually crosses the
// air instead of trusting the in-memory structs.

/// Pack an SSW field into its 24-bit on-air layout (IEEE 802.11ad
/// Fig. 8-402a): Direction (1) | CDOWN (9) | Sector ID (6) |
/// DMG Antenna ID (2, always 0 here) | RXSS Length (6, always 0 here).
/// Bit 0 is Direction; the top byte of the result is zero. Throws
/// PreconditionError when cdown or sector_id exceed their field widths.
std::uint32_t encode_ssw_field(const SswField& field);

/// Inverse of encode_ssw_field(). Throws ParseError when the top byte is
/// non-zero or the frame carries a DMG antenna / RXSS length this model
/// does not represent (single-antenna devices, Sec. 4).
SswField decode_ssw_field(std::uint32_t bits);

/// Pack an SSW feedback field into its 24-bit layout (Fig. 8-402d, ISS
/// form): Sector Select (6) | DMG Antenna Select (2, always 0) |
/// SNR Report (8) | Poll Required (1) | reserved (7). The SNR report uses
/// the standard's quantization: 0.25 dB steps offset from -8 dB, saturated
/// to [0, 255]; an absent report encodes as 0 with the poll bit set (the
/// receiver must ask again), which decode maps back to nullopt.
std::uint32_t encode_ssw_feedback_field(const SswFeedbackField& field);

/// Inverse of encode_ssw_feedback_field(), up to SNR quantization (0.25 dB
/// steps, [-8, 55.75] dB range). Throws ParseError on a non-zero top byte,
/// reserved bits, or an antenna select this model does not represent.
SswFeedbackField decode_ssw_feedback_field(std::uint32_t bits);

/// One over-the-air management frame.
struct Frame {
  FrameType type{FrameType::kBeacon};
  /// Transmitting node's identifier (library-level, not a MAC address).
  int source_node{0};
  /// Time the frame starts on air, relative to the burst start [us].
  double tx_time_us{0.0};
  std::optional<SswField> ssw;
  std::optional<SswFeedbackField> feedback;
};

}  // namespace talon
