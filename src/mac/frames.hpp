// IEEE 802.11ad management frames relevant to beam training.
//
// Only the fields the paper's firmware patches touch are modeled: the
// sector sweep (SSW) field carried in beacon and SSW frames (sector ID +
// CDOWN countdown, Sec. 4.1) and the sweep feedback field carried in SSW /
// SSW-Feedback / SSW-ACK frames whose "selected sector" the patch
// overwrites (Sec. 3.4).
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace talon {

enum class FrameType : std::uint8_t {
  kBeacon,        // DMG beacon, swept over beacon sectors
  kSectorSweep,   // SSW frame within a TXSS burst
  kSswFeedback,   // initiator -> responder after responder sweep
  kSswAck,        // responder -> initiator, completes training
};

std::string to_string(FrameType type);

/// The SSW field present in beacon and SSW frames (IEEE 802.11ad 8.4a.1).
struct SswField {
  /// Remaining frames in this burst ("decreasing counter CDOWN").
  int cdown{0};
  /// Sector used to transmit this frame (6 bits on the air).
  int sector_id{0};
  /// True when sent by the link initiator.
  bool is_initiator{true};
};

/// The sweep feedback field (the "sector select" the firmware patch
/// overwrites).
struct SswFeedbackField {
  /// The sector the sender asks its peer to transmit with.
  int selected_sector_id{0};
  /// SNR report accompanying the selection (optional in the standard).
  std::optional<double> snr_report_db;
};

/// One over-the-air management frame.
struct Frame {
  FrameType type{FrameType::kBeacon};
  /// Transmitting node's identifier (library-level, not a MAC address).
  int source_node{0};
  /// Time the frame starts on air, relative to the burst start [us].
  double tx_time_us{0.0};
  std::optional<SswField> ssw;
  std::optional<SswFeedbackField> feedback;
};

}  // namespace talon
