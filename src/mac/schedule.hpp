// Burst schedules: which sector is used at which CDOWN value.
//
// Table 1 of the paper, verbatim: beacon bursts transmit sector 63 at
// CDOWN 33 and sectors 1..31 at CDOWN 31..1 (slots 34, 32 and 0 unused);
// sweep bursts transmit sectors 1..31 at CDOWN 34..4, then 61/62/63 at
// CDOWN 2/1/0 (slot 3 unused).
#pragma once

#include <optional>
#include <span>
#include <vector>

namespace talon {

/// One slot of a burst: a CDOWN value and the sector transmitted there
/// (nullopt = the device stays silent in this slot).
struct BurstSlot {
  int cdown{0};
  std::optional<int> sector_id;
};

/// Table 1, "Beacon" row, CDOWN 34 down to 0.
std::span<const BurstSlot> beacon_burst_schedule();

/// Table 1, "Sweep" row, CDOWN 34 down to 0.
std::span<const BurstSlot> sweep_burst_schedule();

/// A sweep-style schedule restricted to `probe_sectors` (compressive
/// probing): only slots whose sector is in the set keep their sector;
/// all other slots become silent. Preserves CDOWN numbering so frames
/// remain standard-compliant.
std::vector<BurstSlot> probing_burst_schedule(std::span<const int> probe_sectors);

}  // namespace talon
