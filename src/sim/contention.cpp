#include "src/sim/contention.hpp"

#include <algorithm>

#include "src/common/error.hpp"
#include "src/common/rng.hpp"

namespace talon {

TrainingSerialization serialize_trainings(std::span<const double> sorted_requests,
                                          std::span<const double> durations_s,
                                          double channel_free_s) {
  TALON_EXPECTS(sorted_requests.size() == durations_s.size());
  TrainingSerialization out;
  out.start_times_s.reserve(sorted_requests.size());
  out.channel_free_s = channel_free_s;
  for (std::size_t i = 0; i < sorted_requests.size(); ++i) {
    const double request = sorted_requests[i];
    const double start = std::max(request, out.channel_free_s);
    if (start > request) {
      ++out.deferred;
      out.worst_defer_ms = std::max(out.worst_defer_ms, (start - request) * 1000.0);
    }
    out.start_times_s.push_back(start);
    out.channel_free_s = start + durations_s[i];
    out.busy_time_s += durations_s[i];
  }
  return out;
}

void ChannelArbiter::submit(std::uint64_t key, double desired_s,
                            double duration_s) {
  TALON_EXPECTS(duration_s >= 0.0);
  pending_.push_back(Request{key, desired_s, duration_s});
}

ChannelArbiter::Outcome ChannelArbiter::arbitrate() {
  std::sort(pending_.begin(), pending_.end(),
            [](const Request& a, const Request& b) {
              return a.desired_s != b.desired_s ? a.desired_s < b.desired_s
                                                : a.key < b.key;
            });
  std::vector<double> requests(pending_.size());
  std::vector<double> durations(pending_.size());
  for (std::size_t i = 0; i < pending_.size(); ++i) {
    requests[i] = pending_[i].desired_s;
    durations[i] = pending_[i].duration_s;
  }
  const TrainingSerialization serialized =
      serialize_trainings(requests, durations, channel_free_s_);
  channel_free_s_ = serialized.channel_free_s;

  Outcome outcome;
  outcome.busy_time_s = serialized.busy_time_s;
  outcome.deferred = serialized.deferred;
  outcome.worst_defer_ms = serialized.worst_defer_ms;
  outcome.grants.reserve(pending_.size());
  for (std::size_t i = 0; i < pending_.size(); ++i) {
    outcome.grants.push_back(Grant{pending_[i].key, pending_[i].desired_s,
                                   serialized.start_times_s[i]});
  }
  pending_.clear();
  return outcome;
}

ContentionResult simulate_channel_contention(const ContentionConfig& config,
                                             const ThroughputModel& throughput) {
  TALON_EXPECTS(config.pairs >= 1);
  TALON_EXPECTS(config.trainings_per_second > 0.0);
  TALON_EXPECTS(config.probes_per_training >= 1);
  TALON_EXPECTS(config.simulated_seconds > 0.0);

  const TimingModel timing;
  const double training_s =
      timing.mutual_training_time_ms(config.probes_per_training) / 1000.0;
  const double period_s = 1.0 / config.trainings_per_second;

  // Generate every training request (pair, desired start time).
  Rng rng(config.seed);
  std::vector<double> requests;
  for (int pair = 0; pair < config.pairs; ++pair) {
    // Jitter each pair's schedule within its period.
    const double phase = rng.uniform(0.0, period_s);
    for (double t = phase; t < config.simulated_seconds; t += period_s) {
      requests.push_back(t);
    }
  }
  std::sort(requests.begin(), requests.end());

  // Serialize on the single channel: a training starts at
  // max(request, channel_free) and occupies training_s.
  ContentionResult result;
  result.total_trainings = static_cast<int>(requests.size());
  const std::vector<double> durations(requests.size(), training_s);
  const TrainingSerialization serialized = serialize_trainings(requests, durations);
  result.deferred_trainings = serialized.deferred;
  result.worst_defer_ms = serialized.worst_defer_ms;
  // Trainings pushed past the horizon still count as busy time up to it.
  const double busy_time = std::min(serialized.busy_time_s, config.simulated_seconds);
  result.training_airtime_share = busy_time / config.simulated_seconds;

  // Whatever airtime remains is data time, shared round-robin by the pairs.
  const double single_pair_mbps = throughput.app_throughput_mbps(config.link_snr_db);
  result.goodput_per_pair_mbps = single_pair_mbps *
                                 (1.0 - result.training_airtime_share) /
                                 config.pairs;
  return result;
}

}  // namespace talon
