#include "src/sim/contention.hpp"

#include <algorithm>

#include "src/common/error.hpp"
#include "src/common/rng.hpp"

namespace talon {

ContentionResult simulate_channel_contention(const ContentionConfig& config,
                                             const ThroughputModel& throughput) {
  TALON_EXPECTS(config.pairs >= 1);
  TALON_EXPECTS(config.trainings_per_second > 0.0);
  TALON_EXPECTS(config.probes_per_training >= 1);
  TALON_EXPECTS(config.simulated_seconds > 0.0);

  const TimingModel timing;
  const double training_s =
      timing.mutual_training_time_ms(config.probes_per_training) / 1000.0;
  const double period_s = 1.0 / config.trainings_per_second;

  // Generate every training request (pair, desired start time).
  Rng rng(config.seed);
  std::vector<double> requests;
  for (int pair = 0; pair < config.pairs; ++pair) {
    // Jitter each pair's schedule within its period.
    const double phase = rng.uniform(0.0, period_s);
    for (double t = phase; t < config.simulated_seconds; t += period_s) {
      requests.push_back(t);
    }
  }
  std::sort(requests.begin(), requests.end());

  // Serialize on the single channel: a training starts at
  // max(request, channel_free) and occupies training_s.
  ContentionResult result;
  result.total_trainings = static_cast<int>(requests.size());
  double channel_free = 0.0;
  double busy_time = 0.0;
  for (double request : requests) {
    const double start = std::max(request, channel_free);
    if (start > request) {
      ++result.deferred_trainings;
      result.worst_defer_ms =
          std::max(result.worst_defer_ms, (start - request) * 1000.0);
    }
    channel_free = start + training_s;
    busy_time += training_s;
  }
  // Trainings pushed past the horizon still count as busy time up to it.
  busy_time = std::min(busy_time, config.simulated_seconds);
  result.training_airtime_share = busy_time / config.simulated_seconds;

  // Whatever airtime remains is data time, shared round-robin by the pairs.
  const double single_pair_mbps = throughput.app_throughput_mbps(config.link_snr_db);
  result.goodput_per_pair_mbps = single_pair_mbps *
                                 (1.0 - result.training_airtime_share) /
                                 config.pairs;
  return result;
}

}  // namespace talon
