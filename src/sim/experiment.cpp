#include "src/sim/experiment.hpp"

#include <algorithm>
#include <map>
#include <unordered_set>

#include "src/common/error.hpp"
#include "src/core/metrics.hpp"

namespace talon {

namespace {

/// Keep only the readings whose sector is in `subset`.
std::vector<SectorReading> filter_readings(const SweepMeasurement& sweep,
                                           std::span<const int> subset) {
  const std::unordered_set<int> wanted(subset.begin(), subset.end());
  std::vector<SectorReading> out;
  out.reserve(subset.size());
  for (const SectorReading& r : sweep.readings) {
    if (wanted.contains(r.sector_id)) {
      out.push_back(r);
    }
  }
  return out;
}

/// Convert drained ring-buffer entries of one sweep into readings.
std::vector<SectorReading> readings_from_ring(
    const std::vector<SweepInfoEntry>& entries, std::uint32_t sweep_index) {
  std::vector<SectorReading> out;
  for (const SweepInfoEntry& e : entries) {
    if (e.sweep_index != sweep_index) continue;
    out.push_back(SectorReading{
        .sector_id = e.sector_id, .snr_db = e.snr_db, .rssi_dbm = e.rssi_dbm});
  }
  return out;
}

}  // namespace

std::vector<SweepRecord> record_sweeps(Scenario& scenario,
                                       const RecordingConfig& config) {
  TALON_EXPECTS(!config.head_azimuths_deg.empty());
  TALON_EXPECTS(!config.head_tilts_deg.empty());
  TALON_EXPECTS(config.sweeps_per_pose >= 1);
  Rng rng(config.seed);
  LinkSimulator link = scenario.make_link(rng.fork());

  std::vector<SweepRecord> records;
  records.reserve(config.head_azimuths_deg.size() * config.head_tilts_deg.size() *
                  config.sweeps_per_pose);
  int pose_index = 0;
  for (double tilt : config.head_tilts_deg) {
    for (double az : config.head_azimuths_deg) {
      scenario.set_head(az, tilt);
      for (std::size_t s = 0; s < config.sweeps_per_pose; ++s) {
        SweepOutcome outcome = link.transmit_sweep(*scenario.dut, *scenario.peer,
                                                   sweep_burst_schedule());
        records.push_back(SweepRecord{
            .pose_index = pose_index,
            .physical = scenario.nominal_peer_direction(),
            .measurement = std::move(outcome.measurement),
        });
      }
      ++pose_index;
    }
  }
  return records;
}

std::vector<EstimationErrorRow> estimation_error_analysis(
    std::span<const SweepRecord> records, SectorSelector& selector,
    std::span<const std::size_t> probe_counts, const ProbeSubsetPolicy& policy,
    std::uint64_t seed) {
  TALON_EXPECTS(!records.empty());
  const std::vector<int>& all_tx = talon_tx_sector_ids();
  Rng rng(seed);

  std::vector<EstimationErrorRow> rows;
  rows.reserve(probe_counts.size());
  for (std::size_t m : probe_counts) {
    TALON_EXPECTS(m >= 2 && m <= all_tx.size());
    std::vector<double> az_errors;
    std::vector<double> el_errors;
    for (const SweepRecord& rec : records) {
      const std::vector<int> subset = policy.choose(all_tx, m, rng);
      const std::vector<SectorReading> probes = filter_readings(rec.measurement, subset);
      const auto estimated = selector.estimate_direction(probes);
      if (!estimated) continue;  // too few decoded probes this sweep
      const AngleError err = estimation_error(*estimated, rec.physical);
      az_errors.push_back(err.azimuth_deg);
      el_errors.push_back(err.elevation_deg);
    }
    EstimationErrorRow row;
    row.probes = m;
    row.samples = az_errors.size();
    if (!az_errors.empty()) {
      row.azimuth_error = box_stats(az_errors);
      row.elevation_error = box_stats(el_errors);
    }
    rows.push_back(row);
  }
  return rows;
}

std::vector<SelectionQualityRow> selection_quality_analysis(
    std::span<const SweepRecord> records, SectorSelector& selector,
    std::span<const std::size_t> probe_counts, const ProbeSubsetPolicy& policy,
    std::uint64_t seed) {
  TALON_EXPECTS(!records.empty());
  const std::vector<int>& all_tx = talon_tx_sector_ids();
  Rng rng(seed);

  // Group record indices by pose; stability is a per-pose quantity.
  std::map<int, std::vector<std::size_t>> poses;
  for (std::size_t i = 0; i < records.size(); ++i) {
    poses[records[i].pose_index].push_back(i);
  }

  // --- SSW baseline: probes everything, independent of m -------------------
  // Losses are tracked per pose: "the sector with the highest SNR as
  // reported in the current and previous measurements" only makes sense
  // while the geometry stays fixed.
  SswArgmaxSelector ssw_baseline;
  double ssw_stability_sum = 0.0;
  std::vector<double> ssw_losses;
  for (const auto& [pose, indices] : poses) {
    std::vector<int> selections;
    SnrLossTracker loss;
    int previous = -1;
    for (std::size_t i : indices) {
      const CssResult sel = ssw_baseline.select(records[i].measurement.readings);
      const int chosen = sel.valid ? sel.sector_id : previous;
      if (chosen < 0) continue;  // nothing decoded yet at this pose
      previous = chosen;
      selections.push_back(chosen);
      loss.record(records[i].measurement, chosen);
    }
    if (!selections.empty()) ssw_stability_sum += selection_stability(selections);
    ssw_losses.insert(ssw_losses.end(), loss.losses().begin(), loss.losses().end());
  }
  const double ssw_stability = ssw_stability_sum / static_cast<double>(poses.size());
  const double ssw_loss_db = mean(ssw_losses);

  // --- CSS for each probe count --------------------------------------------
  std::vector<SelectionQualityRow> rows;
  rows.reserve(probe_counts.size());
  for (std::size_t m : probe_counts) {
    TALON_EXPECTS(m >= 2 && m <= all_tx.size());
    double css_stability_sum = 0.0;
    std::vector<double> css_losses;
    for (const auto& [pose, indices] : poses) {
      std::vector<int> selections;
      SnrLossTracker loss;
      int previous = -1;
      for (std::size_t i : indices) {
        const std::vector<int> subset = policy.choose(all_tx, m, rng);
        const std::vector<SectorReading> probes =
            filter_readings(records[i].measurement, subset);
        const CssResult result = selector.select(probes, all_tx);
        const int chosen = result.valid ? result.sector_id : previous;
        if (chosen < 0) continue;
        previous = chosen;
        selections.push_back(chosen);
        loss.record(records[i].measurement, chosen);
      }
      if (!selections.empty()) css_stability_sum += selection_stability(selections);
      css_losses.insert(css_losses.end(), loss.losses().begin(), loss.losses().end());
    }
    rows.push_back(SelectionQualityRow{
        .probes = m,
        .css_stability = css_stability_sum / static_cast<double>(poses.size()),
        .ssw_stability = ssw_stability,
        .css_snr_loss_db = mean(css_losses),
        .ssw_snr_loss_db = ssw_loss_db,
    });
  }
  return rows;
}

std::vector<ThroughputPoint> throughput_analysis(Scenario& scenario,
                                                 SectorSelector& selector,
                                                 const ThroughputModel& model,
                                                 const ThroughputConfig& config) {
  TALON_EXPECTS(config.probes >= 2);
  const std::vector<int>& all_tx = talon_tx_sector_ids();
  Rng rng(config.seed);
  RandomSubsetPolicy subset_policy;

  // The peer produces the feedback that steers the DUT; it needs the
  // research patches for the ring buffer and the override switch.
  FullMacFirmware& peer_fw = scenario.peer->firmware();
  if (!peer_fw.patcher().is_applied("sweep-info")) peer_fw.apply_research_patches();

  const TimingModel timing;
  const double css_training_s =
      config.account_training_time
          ? timing.mutual_training_time_ms(static_cast<int>(config.probes)) / 1000.0
          : 0.0;
  const double ssw_training_s =
      config.account_training_time
          ? timing.mutual_training_time_ms(kFullSweepProbes) / 1000.0
          : 0.0;

  std::vector<ThroughputPoint> points;
  points.reserve(config.head_azimuths_deg.size());
  for (double az : config.head_azimuths_deg) {
    scenario.set_head(az, 0.0);
    LinkSimulator link = scenario.make_link(rng.fork());

    RunningStats css_tput;
    RunningStats ssw_tput;
    int css_previous = -1;
    int ssw_previous = -1;
    for (std::size_t s = 0; s < config.sweeps_per_pose; ++s) {
      // --- CSS sweep: probing subset, user-space selection, WMI override ---
      const std::vector<int> subset = subset_policy.choose(all_tx, config.probes, rng);
      const auto schedule = probing_burst_schedule(subset);
      link.transmit_sweep(*scenario.dut, *scenario.peer, schedule);
      // User space drains the ring buffer and runs CSS on this sweep.
      WmiResponse info = peer_fw.handle_wmi({.type = WmiCommandType::kReadSweepInfo});
      TALON_EXPECTS(info.status == WmiStatus::kOk);
      const auto probes = readings_from_ring(info.entries, peer_fw.sweep_index());
      const CssResult result = selector.select(probes, all_tx);
      const int css_sector = result.valid ? result.sector_id
                             : css_previous >= 0 ? css_previous
                                                 : all_tx.front();
      const bool css_switched = css_previous >= 0 && css_sector != css_previous;
      css_previous = css_sector;
      const WmiResponse set = peer_fw.handle_wmi(
          {.type = WmiCommandType::kSetSectorOverride, .sector_id = css_sector});
      TALON_EXPECTS(set.status == WmiStatus::kOk);
      css_tput.add(model.app_throughput_mbps(
          link.true_snr_db(*scenario.dut, css_sector, *scenario.peer,
                           kRxQuasiOmniSectorId),
          css_training_s, css_switched));

      // --- SSW sweep: full schedule, stock argmax feedback ------------------
      peer_fw.handle_wmi({.type = WmiCommandType::kClearSectorOverride});
      const SweepOutcome full =
          link.transmit_sweep(*scenario.dut, *scenario.peer, sweep_burst_schedule());
      const int ssw_sector = full.feedback.selected_sector_id;
      const bool ssw_switched = ssw_previous >= 0 && ssw_sector != ssw_previous;
      ssw_previous = ssw_sector;
      ssw_tput.add(model.app_throughput_mbps(
          link.true_snr_db(*scenario.dut, ssw_sector, *scenario.peer,
                           kRxQuasiOmniSectorId),
          ssw_training_s, ssw_switched));
      // Drain the ring so the next CSS pass only sees its own sweep.
      peer_fw.handle_wmi({.type = WmiCommandType::kReadSweepInfo});
    }
    points.push_back(ThroughputPoint{
        .head_azimuth_deg = az,
        .css_mbps = css_tput.mean(),
        .ssw_mbps = ssw_tput.mean(),
    });
  }
  return points;
}

}  // namespace talon
