#include "src/sim/experiment.hpp"

#include <algorithm>
#include <map>
#include <unordered_set>

#include "src/common/error.hpp"
#include "src/common/parallel.hpp"
#include "src/core/metrics.hpp"

namespace talon {

namespace {

// Stream tags keep the substream families of the four runners disjoint:
// substream_seed(seed, tag, ...) collides across runners only if the tags
// collide. The values live in common/rng.hpp's registry (streams::) so
// every runner in the codebase shares one uniqueness-checked namespace.
constexpr std::uint64_t kRecordingStream = streams::kRecording;
constexpr std::uint64_t kErrorStream = streams::kError;
constexpr std::uint64_t kQualityStream = streams::kQuality;
constexpr std::uint64_t kThroughputStream = streams::kThroughput;

/// Keep only the readings whose sector is in `subset`.
std::vector<SectorReading> filter_readings(const SweepMeasurement& sweep,
                                           std::span<const int> subset) {
  const std::unordered_set<int> wanted(subset.begin(), subset.end());
  std::vector<SectorReading> out;
  out.reserve(subset.size());
  for (const SectorReading& r : sweep.readings) {
    if (wanted.contains(r.sector_id)) {
      out.push_back(r);
    }
  }
  return out;
}

/// Convert drained ring-buffer entries of one sweep into readings.
std::vector<SectorReading> readings_from_ring(
    const std::vector<SweepInfoEntry>& entries, std::uint32_t sweep_index) {
  std::vector<SectorReading> out;
  for (const SweepInfoEntry& e : entries) {
    if (e.sweep_index != sweep_index) continue;
    out.push_back(SectorReading{
        .sector_id = e.sector_id, .snr_db = e.snr_db, .rssi_dbm = e.rssi_dbm});
  }
  return out;
}

/// Record indices grouped by pose, ascending pose order (std::map). All
/// replay aggregation walks poses in this order regardless of which thread
/// computed which cell.
std::map<int, std::vector<std::size_t>> group_by_pose(
    std::span<const SweepRecord> records) {
  std::map<int, std::vector<std::size_t>> poses;
  for (std::size_t i = 0; i < records.size(); ++i) {
    poses[records[i].pose_index].push_back(i);
  }
  return poses;
}

/// The filtered per-sweep probe lists of one replay cell: every sweep of
/// `indices` restricted to the cell's probe subset.
std::vector<std::vector<SectorReading>> cell_sweeps(
    std::span<const SweepRecord> records, std::span<const std::size_t> indices,
    std::span<const int> subset) {
  std::vector<std::vector<SectorReading>> sweeps;
  sweeps.reserve(indices.size());
  for (std::size_t i : indices) {
    sweeps.push_back(filter_readings(records[i].measurement, subset));
  }
  return sweeps;
}

}  // namespace

std::vector<SweepRecord> record_sweeps(Scenario& scenario,
                                       const RecordingConfig& config) {
  TALON_EXPECTS(!config.head_azimuths_deg.empty());
  TALON_EXPECTS(!config.head_tilts_deg.empty());
  TALON_EXPECTS(config.sweeps_per_pose >= 1);

  std::vector<SweepRecord> records;
  records.reserve(config.head_azimuths_deg.size() * config.head_tilts_deg.size() *
                  config.sweeps_per_pose);
  int pose_index = 0;
  for (double tilt : config.head_tilts_deg) {
    for (double az : config.head_azimuths_deg) {
      scenario.set_head(az, tilt);
      for (std::size_t s = 0; s < config.sweeps_per_pose; ++s) {
        // Each (pose, sweep) trial gets its own substream-seeded link: a
        // record's noise depends only on its (pose, sweep) coordinates,
        // never on how many frames other trials transmitted before it.
        // Recording fewer sweeps or a pose prefix reproduces the shared
        // records exactly.
        LinkSimulator link = scenario.make_link(Rng(substream_seed(
            config.seed, kRecordingStream,
            static_cast<std::uint64_t>(pose_index), s)));
        SweepOutcome outcome = link.transmit_sweep(*scenario.dut, *scenario.peer,
                                                   sweep_burst_schedule());
        records.push_back(SweepRecord{
            .pose_index = pose_index,
            .physical = scenario.nominal_peer_direction(),
            .measurement = std::move(outcome.measurement),
        });
      }
      ++pose_index;
    }
  }
  return records;
}

std::vector<EstimationErrorRow> estimation_error_analysis(
    std::span<const SweepRecord> records, SectorSelector& selector,
    std::span<const std::size_t> probe_counts, const ProbeSubsetPolicy& policy,
    std::uint64_t seed, const ReplayOptions& options) {
  TALON_EXPECTS(!records.empty());
  const std::vector<int>& all_tx = talon_tx_sector_ids();
  for (std::size_t m : probe_counts) {
    TALON_EXPECTS(m >= 2 && m <= all_tx.size());
  }

  const std::map<int, std::vector<std::size_t>> poses = group_by_pose(records);

  // One cell per (probe count, pose), probe-count-major so aggregation can
  // walk the flat result array in row order.
  struct Cell {
    std::size_t m{0};
    int pose{0};
    const std::vector<std::size_t>* indices{nullptr};
  };
  std::vector<Cell> cells;
  cells.reserve(probe_counts.size() * poses.size());
  for (std::size_t m : probe_counts) {
    for (const auto& [pose, indices] : poses) {
      cells.push_back(Cell{.m = m, .pose = pose, .indices = &indices});
    }
  }

  struct CellErrors {
    std::vector<double> az;
    std::vector<double> el;
  };
  std::vector<CellErrors> results(cells.size());

  parallel_for(
      cells.size(),
      [&](std::size_t c) {
        const Cell& cell = cells[c];
        const std::unique_ptr<SectorSelector> worker = selector.fork();
        Rng rng(substream_seed(seed, kErrorStream, cell.m,
                               static_cast<std::uint64_t>(cell.pose)));
        const std::vector<int> subset = policy.choose(all_tx, cell.m, rng);
        const std::vector<std::vector<SectorReading>> sweeps =
            cell_sweeps(records, *cell.indices, subset);

        std::vector<std::optional<Direction>> estimates;
        if (options.batch) {
          estimates = worker->estimate_directions(sweeps);
        } else {
          estimates.reserve(sweeps.size());
          for (const std::vector<SectorReading>& probes : sweeps) {
            estimates.push_back(worker->estimate_direction(probes));
          }
        }

        CellErrors& out = results[c];
        for (std::size_t k = 0; k < sweeps.size(); ++k) {
          if (!estimates[k]) continue;  // too few decoded probes this sweep
          const AngleError err =
              estimation_error(*estimates[k], records[(*cell.indices)[k]].physical);
          out.az.push_back(err.azimuth_deg);
          out.el.push_back(err.elevation_deg);
        }
      },
      ParallelOptions{.threads = options.threads});

  std::vector<EstimationErrorRow> rows;
  rows.reserve(probe_counts.size());
  std::size_t c = 0;
  for (std::size_t m : probe_counts) {
    std::vector<double> az_errors;
    std::vector<double> el_errors;
    for (std::size_t p = 0; p < poses.size(); ++p, ++c) {
      az_errors.insert(az_errors.end(), results[c].az.begin(), results[c].az.end());
      el_errors.insert(el_errors.end(), results[c].el.begin(), results[c].el.end());
    }
    EstimationErrorRow row;
    row.probes = m;
    row.samples = az_errors.size();
    if (!az_errors.empty()) {
      row.azimuth_error = box_stats(az_errors);
      row.elevation_error = box_stats(el_errors);
    }
    rows.push_back(row);
  }
  return rows;
}

std::vector<SelectionQualityRow> selection_quality_analysis(
    std::span<const SweepRecord> records, SectorSelector& selector,
    std::span<const std::size_t> probe_counts, const ProbeSubsetPolicy& policy,
    std::uint64_t seed, const ReplayOptions& options) {
  TALON_EXPECTS(!records.empty());
  const std::vector<int>& all_tx = talon_tx_sector_ids();
  for (std::size_t m : probe_counts) {
    TALON_EXPECTS(m >= 2 && m <= all_tx.size());
  }

  // Group record indices by pose; stability is a per-pose quantity.
  const std::map<int, std::vector<std::size_t>> poses = group_by_pose(records);
  std::vector<const std::vector<std::size_t>*> pose_cells;
  pose_cells.reserve(poses.size());
  for (const auto& [pose, indices] : poses) pose_cells.push_back(&indices);

  // Per-cell replay outcome: sweeps within a cell run in recording order
  // because stability counts selection *switches* and SnrLossTracker
  // compares against the previous measurement.
  struct PoseQuality {
    bool has_selections{false};
    double stability{0.0};
    std::vector<double> losses;
  };

  // --- SSW baseline: probes everything, independent of m -------------------
  // Losses are tracked per pose: "the sector with the highest SNR as
  // reported in the current and previous measurements" only makes sense
  // while the geometry stays fixed.
  std::vector<PoseQuality> ssw_cells(pose_cells.size());
  parallel_for(
      pose_cells.size(),
      [&](std::size_t p) {
        SswArgmaxSelector ssw_baseline;
        std::vector<int> selections;
        SnrLossTracker loss;
        int previous = -1;
        for (std::size_t i : *pose_cells[p]) {
          const CssResult sel = ssw_baseline.select(records[i].measurement.readings);
          const int chosen = sel.valid ? sel.sector_id : previous;
          if (chosen < 0) continue;  // nothing decoded yet at this pose
          previous = chosen;
          selections.push_back(chosen);
          loss.record(records[i].measurement, chosen);
        }
        PoseQuality& out = ssw_cells[p];
        out.has_selections = !selections.empty();
        if (out.has_selections) out.stability = selection_stability(selections);
        out.losses = loss.losses();
      },
      ParallelOptions{.threads = options.threads});

  double ssw_stability_sum = 0.0;
  std::vector<double> ssw_losses;
  for (const PoseQuality& cell : ssw_cells) {
    if (cell.has_selections) ssw_stability_sum += cell.stability;
    ssw_losses.insert(ssw_losses.end(), cell.losses.begin(), cell.losses.end());
  }
  const double ssw_stability = ssw_stability_sum / static_cast<double>(poses.size());
  const double ssw_loss_db = mean(ssw_losses);

  // --- CSS for each (probe count, pose) cell -------------------------------
  struct Cell {
    std::size_t m{0};
    int pose{0};
    const std::vector<std::size_t>* indices{nullptr};
  };
  std::vector<Cell> cells;
  cells.reserve(probe_counts.size() * poses.size());
  for (std::size_t m : probe_counts) {
    for (const auto& [pose, indices] : poses) {
      cells.push_back(Cell{.m = m, .pose = pose, .indices = &indices});
    }
  }
  std::vector<PoseQuality> css_cells(cells.size());

  parallel_for(
      cells.size(),
      [&](std::size_t c) {
        const Cell& cell = cells[c];
        const std::unique_ptr<SectorSelector> worker = selector.fork();
        Rng rng(substream_seed(seed, kQualityStream, cell.m,
                               static_cast<std::uint64_t>(cell.pose)));
        const std::vector<int> subset = policy.choose(all_tx, cell.m, rng);
        const std::vector<std::vector<SectorReading>> sweeps =
            cell_sweeps(records, *cell.indices, subset);

        std::vector<CssResult> selected;
        if (options.batch) {
          selected = worker->select_batch(sweeps, all_tx);
        } else {
          selected.reserve(sweeps.size());
          for (const std::vector<SectorReading>& probes : sweeps) {
            selected.push_back(worker->select(probes, all_tx));
          }
        }

        std::vector<int> selections;
        SnrLossTracker loss;
        int previous = -1;
        for (std::size_t k = 0; k < sweeps.size(); ++k) {
          const int chosen = selected[k].valid ? selected[k].sector_id : previous;
          if (chosen < 0) continue;
          previous = chosen;
          selections.push_back(chosen);
          loss.record(records[(*cell.indices)[k]].measurement, chosen);
        }
        PoseQuality& out = css_cells[c];
        out.has_selections = !selections.empty();
        if (out.has_selections) out.stability = selection_stability(selections);
        out.losses = loss.losses();
      },
      ParallelOptions{.threads = options.threads});

  std::vector<SelectionQualityRow> rows;
  rows.reserve(probe_counts.size());
  std::size_t c = 0;
  for (std::size_t m : probe_counts) {
    double css_stability_sum = 0.0;
    std::vector<double> css_losses;
    for (std::size_t p = 0; p < poses.size(); ++p, ++c) {
      if (css_cells[c].has_selections) css_stability_sum += css_cells[c].stability;
      css_losses.insert(css_losses.end(), css_cells[c].losses.begin(),
                        css_cells[c].losses.end());
    }
    rows.push_back(SelectionQualityRow{
        .probes = m,
        .css_stability = css_stability_sum / static_cast<double>(poses.size()),
        .ssw_stability = ssw_stability,
        .css_snr_loss_db = mean(css_losses),
        .ssw_snr_loss_db = ssw_loss_db,
    });
  }
  return rows;
}

std::vector<ThroughputPoint> throughput_analysis(const ScenarioFactory& make_scenario,
                                                 SectorSelector& selector,
                                                 const ThroughputModel& model,
                                                 const ThroughputConfig& config,
                                                 const ReplayOptions& options) {
  TALON_EXPECTS(config.probes >= 2);
  const std::vector<int>& all_tx = talon_tx_sector_ids();

  const TimingModel timing;
  const double css_training_s =
      config.account_training_time
          ? timing.mutual_training_time_ms(static_cast<int>(config.probes)) / 1000.0
          : 0.0;
  const double ssw_training_s =
      config.account_training_time
          ? timing.mutual_training_time_ms(kFullSweepProbes) / 1000.0
          : 0.0;

  std::vector<ThroughputPoint> points(config.head_azimuths_deg.size());
  parallel_for(
      config.head_azimuths_deg.size(),
      [&](std::size_t p) {
        Scenario scenario = make_scenario();
        scenario.set_head(config.head_azimuths_deg[p], 0.0);
        const std::unique_ptr<SectorSelector> worker = selector.fork();
        RandomSubsetPolicy subset_policy;
        Rng rng(substream_seed(config.seed, kThroughputStream, p));

        // The peer produces the feedback that steers the DUT; it needs the
        // research patches for the ring buffer and the override switch.
        FullMacFirmware& peer_fw = scenario.peer->firmware();
        if (!peer_fw.patcher().is_applied("sweep-info")) {
          peer_fw.apply_research_patches();
        }

        LinkSimulator link = scenario.make_link(rng.fork());

        RunningStats css_tput;
        RunningStats ssw_tput;
        int css_previous = -1;
        int ssw_previous = -1;
        for (std::size_t s = 0; s < config.sweeps_per_pose; ++s) {
          // --- CSS sweep: probing subset, user-space selection, WMI override ---
          const std::vector<int> subset =
              subset_policy.choose(all_tx, config.probes, rng);
          const auto schedule = probing_burst_schedule(subset);
          link.transmit_sweep(*scenario.dut, *scenario.peer, schedule);
          // User space drains the ring buffer and runs CSS on this sweep.
          WmiResponse info =
              peer_fw.handle_wmi({.type = WmiCommandType::kReadSweepInfo});
          TALON_EXPECTS(info.status == WmiStatus::kOk);
          const auto probes = readings_from_ring(info.entries, peer_fw.sweep_index());
          const CssResult result = worker->select(probes, all_tx);
          const int css_sector = result.valid ? result.sector_id
                                 : css_previous >= 0 ? css_previous
                                                     : all_tx.front();
          const bool css_switched = css_previous >= 0 && css_sector != css_previous;
          css_previous = css_sector;
          const WmiResponse set = peer_fw.handle_wmi(
              {.type = WmiCommandType::kSetSectorOverride, .sector_id = css_sector});
          TALON_EXPECTS(set.status == WmiStatus::kOk);
          css_tput.add(model.app_throughput_mbps(
              link.true_snr_db(*scenario.dut, css_sector, *scenario.peer,
                               kRxQuasiOmniSectorId),
              css_training_s, css_switched));

          // --- SSW sweep: full schedule, stock argmax feedback ------------------
          peer_fw.handle_wmi({.type = WmiCommandType::kClearSectorOverride});
          const SweepOutcome full = link.transmit_sweep(*scenario.dut, *scenario.peer,
                                                        sweep_burst_schedule());
          const int ssw_sector = full.feedback.selected_sector_id;
          const bool ssw_switched = ssw_previous >= 0 && ssw_sector != ssw_previous;
          ssw_previous = ssw_sector;
          ssw_tput.add(model.app_throughput_mbps(
              link.true_snr_db(*scenario.dut, ssw_sector, *scenario.peer,
                               kRxQuasiOmniSectorId),
              ssw_training_s, ssw_switched));
          // Drain the ring so the next CSS pass only sees its own sweep.
          peer_fw.handle_wmi({.type = WmiCommandType::kReadSweepInfo});
        }
        points[p] = ThroughputPoint{
            .head_azimuth_deg = config.head_azimuths_deg[p],
            .css_mbps = css_tput.mean(),
            .ssw_mbps = ssw_tput.mean(),
        };
      },
      ParallelOptions{.threads = options.threads});
  return points;
}

}  // namespace talon
