#include "src/sim/access.hpp"

#include <algorithm>

#include "src/common/error.hpp"
#include "src/core/ssw.hpp"

namespace talon {

InitialAccessSimulator::InitialAccessSimulator(LinkSimulator& link, Node& ap,
                                               std::vector<Node*> stations,
                                               const InitialAccessConfig& config,
                                               Rng rng)
    : link_(&link), ap_(&ap), stations_(std::move(stations)), config_(config), rng_(rng) {
  TALON_EXPECTS(config_.a_bft_slots >= 1);
  TALON_EXPECTS(config_.max_beacon_intervals >= 1);
  TALON_EXPECTS(!stations_.empty());
  for (Node* s : stations_) TALON_EXPECTS(s != nullptr);
}

std::vector<std::optional<int>> InitialAccessSimulator::beacon_interval() {
  std::vector<std::optional<int>> best(stations_.size());
  for (std::size_t i = 0; i < stations_.size(); ++i) {
    // The station listens quasi-omni to the AP's beacon burst; the
    // strongest decoded beacon identifies the AP's sector toward it.
    const SweepOutcome outcome =
        link_->transmit_sweep(*ap_, *stations_[i], beacon_burst_schedule());
    const SswSelection sel = sweep_select(outcome.measurement.readings);
    if (sel.valid) best[i] = sel.sector_id;
  }
  return best;
}

std::optional<int> InitialAccessSimulator::a_bft_training(Node& station) {
  // Responder sector sweep: the station probes all its TX sectors toward
  // the AP, which answers with the argmax in the SSW feedback.
  const SweepOutcome outcome =
      link_->transmit_sweep(station, *ap_, sweep_burst_schedule());
  if (outcome.measurement.readings.empty()) return std::nullopt;
  return outcome.feedback.selected_sector_id;
}

std::vector<AssociationOutcome> InitialAccessSimulator::run() {
  const TimingModel timing;
  std::vector<AssociationOutcome> outcomes(stations_.size());

  for (int interval = 1; interval <= config_.max_beacon_intervals; ++interval) {
    const bool all_done = std::all_of(outcomes.begin(), outcomes.end(),
                                      [](const AssociationOutcome& o) {
                                        return o.associated;
                                      });
    if (all_done) break;

    const std::vector<std::optional<int>> best = beacon_interval();

    // Contending stations pick an A-BFT slot uniformly at random.
    std::map<int, std::vector<std::size_t>> slots;
    for (std::size_t i = 0; i < stations_.size(); ++i) {
      if (outcomes[i].associated || !best[i]) continue;
      slots[rng_.uniform_int(0, config_.a_bft_slots - 1)].push_back(i);
    }

    for (const auto& [slot, contenders] : slots) {
      if (contenders.size() > 1) {
        // SSW frames of multiple stations overlap: nobody trains.
        for (std::size_t i : contenders) ++outcomes[i].collisions;
        continue;
      }
      const std::size_t i = contenders.front();
      if (const auto sta_sector = a_bft_training(*stations_[i])) {
        outcomes[i].associated = true;
        outcomes[i].beacon_intervals = interval;
        outcomes[i].ap_tx_sector = best[i];
        outcomes[i].sta_tx_sector = sta_sector;
        outcomes[i].time_ms = interval * timing.beacon_interval_ms;
        stations_[i]->firmware().apply_peer_feedback(
            SswFeedbackField{.selected_sector_id = *sta_sector});
      }
    }
  }

  for (AssociationOutcome& o : outcomes) {
    if (!o.associated) {
      o.beacon_intervals = config_.max_beacon_intervals;
      o.time_ms = config_.max_beacon_intervals * timing.beacon_interval_ms;
    }
  }
  return outcomes;
}

}  // namespace talon
