// City-scale 60 GHz mesh on the discrete-event core: a controller/minion
// split modeled on Terragraph's E2E architecture (SNIPPETS.md Snippet 1).
//
// The controller is the single network-wide brain: it owns the topology
// store (hundreds of APs on a grid, thousands of STA links hanging off
// them, a frequency-reuse channel assignment), orders association
// ignition in bounded waves (at most ignition_batch links start
// associating per scan slot, like Terragraph's ignition app bringing up a
// figure-of-merit-ordered link list), and schedules the network-wide
// training scans. The minions are the per-AP agents: each scan slot the
// controller dispatches one commuting event per AP whose minion advances
// only its own links (association churn draws, schedule jitter, training
// requests), then per-channel arbiter entities serialize the requests on
// their shared medium (sim/contention's ChannelArbiter -- quasi-omni
// reception means a training occupies its channel for every co-channel
// link), and a second commuting minion phase applies the grants to the
// link state machines -- the shared LinkLifecycle (core/link_state.hpp):
// controller ignition is kIgnite (Down -> Acquisition), the granted
// association sweep is kAcquireRound (-> Up), churn is kDrop, and every
// granted steady-state training feeds kHealthy. Driver-layer recovery
// (LinkSession) runs the very same machine, so controller ignition and
// session fallback are one model.
//
// Millions of users never appear individually: they arrive as aggregated
// per-AP offered load, served from the data airtime the training scans
// leave on each channel.
//
// Scale envelope: per-link state is a few dozen bytes (no nodes, no
// firmware, no sessions -- the link-accurate path stays in
// NetworkSimulator), so thousands of links simulate faster than real time
// on one core. Every draw is substream-keyed by (stream tag, link, slot,
// salt) -- streams::kMesh* in common/rng.hpp -- so runs are bit-identical
// at any --threads.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/core/link_state.hpp"

namespace talon {

struct MeshConfig {
  /// APs in the topology store, laid out on a square grid.
  int aps{64};
  /// STA links per AP (total links = aps * stas_per_ap).
  int stas_per_ap{4};
  /// Co-channel arbiter domains; APs are assigned round-robin
  /// (frequency reuse across the deployment).
  int channels{4};
  /// Training scans per second the controller schedules for every Up
  /// link; one scan slot spans one period.
  double trainings_per_second{10.0};
  double simulated_seconds{5.0};
  /// Links the controller ignites (starts associating) per scan slot --
  /// the association/ignition ordering knob.
  int ignition_batch{32};
  /// Probes per steady-state CSS training; association runs the full
  /// 34-sector sweep.
  std::size_t probes{14};
  /// Per-slot probability an Up link loses association (transient
  /// blockage churn) and must re-ignite through the controller.
  double churn_probability{0.0};
  /// Aggregated offered traffic per AP [Mbps] -- the stand-in for that
  /// AP's share of millions of users.
  double offered_load_per_ap_mbps{400.0};
  /// AP grid spacing [m].
  double ap_spacing_m{20.0};
  /// STA link distance range [m] (drawn per link).
  double min_sta_distance_m{2.0};
  double max_sta_distance_m{12.0};
  /// Log-normal shadowing stddev on the per-link SNR [dB].
  double shadowing_db{2.0};
  /// Link SNR at 1 m before pathloss and shadowing [dB].
  double snr_at_1m_db{38.0};
  std::uint64_t seed{1};
  /// Worker threads for the commuting event batches; <= 0 uses the
  /// executor default.
  int threads{0};
  /// Optional per-link RNG salt (index = link id, missing = 0), folded
  /// into that link's substream coordinates only -- the stream-isolation
  /// tests perturb one link and expect other channels untouched.
  std::vector<std::uint64_t> link_seed_salts{};
};

/// One AP row of the controller's topology store.
struct MeshAp {
  int id{-1};
  double x_m{0.0};
  double y_m{0.0};
  int channel{-1};

  friend bool operator==(const MeshAp&, const MeshAp&) = default;
};

/// Final per-link record of a run (bit-comparable across runs; the
/// determinism tests assert full equality at every thread count).
struct MeshLinkReport {
  int ap{-1};
  int channel{-1};
  LinkState state{LinkState::kDown};
  double distance_m{0.0};
  double snr_db{0.0};
  /// Completion time of the first successful association [s]; negative
  /// if the link never ignited within the horizon.
  double ignition_time_s{-1.0};
  /// Steady-state CSS trainings completed.
  std::uint64_t trainings{0};
  /// Trainings that found the channel busy and started late.
  std::uint64_t deferrals{0};
  /// Successful re-associations after churn drops.
  std::uint64_t reassociations{0};
  /// Times the link lost association to churn.
  std::uint64_t churn_drops{0};
  double worst_defer_ms{0.0};
  /// This link's lifecycle transition counters and time-in-state
  /// aggregates (unit: seconds), bit-comparable like the rest of the
  /// record.
  LifecycleStats lifecycle{};

  friend bool operator==(const MeshLinkReport&, const MeshLinkReport&) = default;
};

struct MeshChannelReport {
  int links{0};
  /// Channel time occupied by trainings [s].
  double busy_time_s{0.0};
  /// min(busy, horizon) / horizon.
  double training_airtime_share{0.0};
  int trainings{0};
  int deferred{0};
  double worst_defer_ms{0.0};

  friend bool operator==(const MeshChannelReport&, const MeshChannelReport&) = default;
};

struct MeshApReport {
  double offered_mbps{0.0};
  /// Aggregated goodput actually served to this AP's users [Mbps]:
  /// its Up links' throughput scaled by the channel's remaining data
  /// airtime and co-channel sharing, capped by the offered load.
  double served_mbps{0.0};
  int up_links{0};

  friend bool operator==(const MeshApReport&, const MeshApReport&) = default;
};

struct MeshRunResult {
  std::vector<MeshLinkReport> links;
  std::vector<MeshChannelReport> channels;
  std::vector<MeshApReport> aps;
  double simulated_s{0.0};
  std::uint64_t events_executed{0};
  std::uint64_t parallel_batches{0};
  /// Links that completed association at least once.
  std::size_t ignited{0};
  double mean_ignition_s{0.0};
  double max_ignition_s{0.0};
  std::uint64_t total_trainings{0};
  std::uint64_t deferred_trainings{0};
  double worst_defer_ms{0.0};
  std::uint64_t reassociations{0};
  /// Mean per-link SNR over links that ever ignited [dB].
  double mean_snr_db{0.0};
  /// Sum of every AP's served load [Mbps].
  double aggregate_goodput_mbps{0.0};
  /// Network-wide sum of every link's lifecycle record, accumulated in
  /// link order after the run (thread-count independent).
  LifecycleStats lifecycle_totals{};

  friend bool operator==(const MeshRunResult&, const MeshRunResult&) = default;
};

class MeshSimulator {
 public:
  explicit MeshSimulator(MeshConfig config);

  /// Simulate the configured horizon and return the network-wide record.
  MeshRunResult run();

  int link_count() const { return config_.aps * config_.stas_per_ap; }

  /// The controller's topology store.
  const std::vector<MeshAp>& topology() const { return aps_; }

 private:
  MeshConfig config_;
  std::vector<MeshAp> aps_;
};

}  // namespace talon
