// A simulated Talon AD7200: a pose in the world, a physical front-end
// (array + codebook + imperfections) and the FullMAC firmware instance.
#pragma once

#include <cstdint>
#include <memory>

#include "src/antenna/synthesis.hpp"
#include "src/channel/link.hpp"
#include "src/firmware/device.hpp"

namespace talon {

struct NodeConfig {
  int id{0};
  /// Individualizes chassis ripple and calibration errors.
  std::uint64_t device_seed{1};
  EndpointPose pose;
  FirmwareConfig firmware;
};

class Node {
 public:
  explicit Node(const NodeConfig& config);

  int id() const { return id_; }

  EndpointPose& pose() { return pose_; }
  const EndpointPose& pose() const { return pose_; }

  /// Ground-truth realized gains of this device's sectors.
  const ArrayGainSource& front_end() const { return front_end_; }

  const Codebook& codebook() const { return front_end_.codebook(); }

  FullMacFirmware& firmware() { return firmware_; }
  const FullMacFirmware& firmware() const { return firmware_; }

 private:
  int id_;
  EndpointPose pose_;
  ArrayGainSource front_end_;
  FullMacFirmware firmware_;
};

}  // namespace talon
