#include "src/sim/scenario.hpp"

namespace talon {

namespace {

Scenario make_two_node_scenario(std::string name, std::unique_ptr<Environment> env,
                                double distance_m, std::uint64_t seed) {
  Scenario s;
  s.name = std::move(name);
  s.environment = std::move(env);
  s.distance_m = distance_m;

  NodeConfig dut_config;
  dut_config.id = 1;
  dut_config.device_seed = seed;
  dut_config.pose = EndpointPose{
      .position = {0.0, 0.0, 1.0},
      .orientation = DeviceOrientation(0.0, 0.0),
  };
  s.dut = std::make_unique<Node>(dut_config);

  NodeConfig peer_config;
  peer_config.id = 2;
  peer_config.device_seed = seed + 1;
  peer_config.pose = EndpointPose{
      .position = {distance_m, 0.0, 1.0},
      .orientation = DeviceOrientation(180.0, 0.0),  // facing back at the DUT
  };
  s.peer = std::make_unique<Node>(peer_config);
  return s;
}

}  // namespace

void Scenario::set_head(double azimuth_deg, double tilt_deg) {
  dut->pose().orientation = DeviceOrientation(azimuth_deg, -tilt_deg);
}

Direction Scenario::nominal_peer_direction() const {
  const DeviceOrientation& o = dut->pose().orientation;
  return Direction{-o.azimuth_deg(), -o.tilt_deg()};
}

Scenario make_anechoic_scenario(std::uint64_t seed) {
  return make_two_node_scenario("anechoic", make_anechoic_chamber(), 3.0, seed);
}

Scenario make_lab_scenario(std::uint64_t seed) {
  return make_two_node_scenario("lab", make_lab_environment(), 3.0, seed);
}

Scenario make_conference_scenario(std::uint64_t seed) {
  return make_two_node_scenario("conference", make_conference_room(), 6.0, seed);
}

}  // namespace talon
