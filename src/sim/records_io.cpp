#include "src/sim/records_io.hpp"

#include <cmath>

#include "src/common/error.hpp"

namespace talon {

CsvTable records_to_csv(const std::vector<SweepRecord>& records) {
  CsvTable out;
  out.header = {"record_index", "pose_index", "physical_azimuth_deg",
                "physical_elevation_deg", "sector_id", "snr_db", "rssi_dbm"};
  for (std::size_t i = 0; i < records.size(); ++i) {
    const SweepRecord& rec = records[i];
    const auto base = [&](double sector, double snr, double rssi) {
      out.rows.push_back({static_cast<double>(i), static_cast<double>(rec.pose_index),
                          rec.physical.azimuth_deg, rec.physical.elevation_deg,
                          sector, snr, rssi});
    };
    if (rec.measurement.readings.empty()) {
      base(-1.0, 0.0, 0.0);  // sentinel: the sweep happened, nothing decoded
      continue;
    }
    for (const SectorReading& r : rec.measurement.readings) {
      base(static_cast<double>(r.sector_id), r.snr_db, r.rssi_dbm);
    }
  }
  return out;
}

std::vector<SweepRecord> records_from_csv(const CsvTable& table) {
  const std::size_t col_rec = table.column("record_index");
  const std::size_t col_pose = table.column("pose_index");
  const std::size_t col_az = table.column("physical_azimuth_deg");
  const std::size_t col_el = table.column("physical_elevation_deg");
  const std::size_t col_sector = table.column("sector_id");
  const std::size_t col_snr = table.column("snr_db");
  const std::size_t col_rssi = table.column("rssi_dbm");

  std::vector<SweepRecord> records;
  long current = -1;
  for (const auto& row : table.rows) {
    const long rec_index = std::lround(row[col_rec]);
    if (rec_index < 0) throw ParseError("records csv: negative record index");
    if (rec_index != current) {
      if (rec_index != current + 1) {
        throw ParseError("records csv: record indices must be consecutive");
      }
      current = rec_index;
      records.push_back(SweepRecord{
          .pose_index = static_cast<int>(std::lround(row[col_pose])),
          .physical = {row[col_az], row[col_el]},
          .measurement = {},
      });
    }
    const int sector = static_cast<int>(std::lround(row[col_sector]));
    if (sector < 0) continue;  // sentinel row: empty sweep
    records.back().measurement.readings.push_back(SectorReading{
        .sector_id = sector, .snr_db = row[col_snr], .rssi_dbm = row[col_rssi]});
  }
  if (records.empty()) throw ParseError("records csv: no records");
  return records;
}

}  // namespace talon
