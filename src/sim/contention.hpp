// Shared-channel training contention (the Sec. 7 discussion, simulated).
//
// "Each sector sweep performed by a pair of nodes pollutes the whole
// mm-wave channel in all directions" -- quasi-omni reception means a sweep
// occupies the channel exclusively for everyone. This event-driven model
// schedules periodic trainings for N co-channel pairs, serializes them on
// the one channel (later arrivals defer), and accounts the remaining
// airtime as data capacity shared by the pairs. Comparing the stock
// 34-probe sweep against CSS probing quantifies how much of the room's
// capacity beam training consumes as density and mobility grow.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "src/mac/timing.hpp"
#include "src/phy/throughput.hpp"

namespace talon {

/// Outcome of serializing a batch of training requests on the one channel.
struct TrainingSerialization {
  /// Actual start time of each request (same order as the input).
  std::vector<double> start_times_s;
  /// Channel time the batch occupied (sum of the durations).
  double busy_time_s{0.0};
  /// When the channel frees after the last training; feed it back in as
  /// `channel_free_s` to chain successive batches (e.g. training rounds).
  double channel_free_s{0.0};
  int deferred{0};
  double worst_defer_ms{0.0};
};

/// Serialize trainings on the single shared channel: request i wants to
/// start at `sorted_requests[i]` (ascending) and occupies `durations_s[i]`;
/// it actually starts at max(request, channel free time). The channel is
/// initially free at `channel_free_s`. This is the core of the contention
/// model, exposed so the round-based NetworkSimulator can stagger each
/// round's trainings with the exact same arithmetic.
TrainingSerialization serialize_trainings(std::span<const double> sorted_requests,
                                          std::span<const double> durations_s,
                                          double channel_free_s = 0.0);

/// The shared channel as a discrete-event entity. Submitting from a
/// slot's commuting link fan-out is NOT allowed -- submission happens
/// inside the arbiter entity's own event (the engine's contention phase),
/// which is the only code that may touch this state. arbitrate() drains
/// the pending requests through serialize_trainings, carrying the
/// channel-free time across slots exactly like the round-based simulator
/// carried it across rounds, so a saturated channel staggers later slots.
class ChannelArbiter {
 public:
  struct Request {
    /// Stable tie-break at equal desired times (typically the link id).
    std::uint64_t key{0};
    double desired_s{0.0};
    double duration_s{0.0};
  };

  struct Grant {
    std::uint64_t key{0};
    double desired_s{0.0};
    double actual_s{0.0};
  };

  struct Outcome {
    /// One grant per request, in (desired_s, key) order.
    std::vector<Grant> grants;
    double busy_time_s{0.0};
    int deferred{0};
    double worst_defer_ms{0.0};
  };

  /// Queue one training request for the next arbitrate() call.
  void submit(std::uint64_t key, double desired_s, double duration_s);

  /// Serialize every pending request on the channel (later arrivals
  /// defer) and clear the pending set. The serialization order is
  /// (desired_s, key) -- identical to the round-based simulator's
  /// (desired time, link index) sort.
  Outcome arbitrate();

  /// When the channel frees after everything granted so far.
  double channel_free_s() const { return channel_free_s_; }

  std::size_t pending() const { return pending_.size(); }

 private:
  std::vector<Request> pending_;
  double channel_free_s_{0.0};
};

struct ContentionConfig {
  int pairs{10};
  /// Trainings per second each pair schedules (mobility -> higher).
  double trainings_per_second{1.0};
  /// TX-sector probes per training (34 = stock sweep, 14 = paper's CSS).
  int probes_per_training{34};
  double simulated_seconds{10.0};
  /// True link SNR assumed for every pair's data phase.
  double link_snr_db{21.0};
  std::uint64_t seed{1};
};

struct ContentionResult {
  /// Fraction of channel time spent on beam training.
  double training_airtime_share{0.0};
  /// Trainings that found the channel busy and had to defer.
  int deferred_trainings{0};
  int total_trainings{0};
  /// Mean data goodput available per pair [Mbps], after training airtime.
  double goodput_per_pair_mbps{0.0};
  /// Largest observed training start delay due to contention [ms].
  double worst_defer_ms{0.0};
};

/// Run the contention model. Trainings are jittered uniformly within each
/// pair's period so phases do not align artificially.
ContentionResult simulate_channel_contention(const ContentionConfig& config,
                                             const ThroughputModel& throughput);

}  // namespace talon
