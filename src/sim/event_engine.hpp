// Deterministic discrete-event engine.
//
// Replaces the round-based barrier loop: entities (links, channel
// arbiters, a mesh controller) schedule handler events on one ordered
// queue (common/event_queue.hpp) and the engine executes them in the
// canonical (timestamp, priority, entity, seq) order. Determinism is
// structural, not statistical:
//
//  * Ordering contract -- events run in strict key order. At one
//    timestamp, priorities partition the slot into phases (e.g. prepare
//    -> arbitrate -> apply); within a phase the entity id orders
//    execution, and the insertion sequence breaks the last tie.
//  * Commuting-batch rule -- a same-(timestamp, priority) batch fans out
//    over parallel workers ONLY when every event in it was scheduled as
//    `commuting`, meaning its handler touches nothing but its own
//    entity's state (plus immutable shared data). The batch is grouped by
//    entity -- one entity's events per worker, executed in seq order --
//    so the fan-out is provably order-free and results are bit-identical
//    at any thread count. Any non-commuting event in the batch degrades
//    the whole batch to serial canonical order.
//  * Shared state is an entity -- anything two links contend for (the
//    one mm-wave channel) is modeled as its own entity (sim/contention's
//    ChannelArbiter) whose events run in a later priority phase, after
//    the commuting fan-out of the links that feed it.
//  * Randomness rides substream_seed coordinates (common/rng.hpp), never
//    engine state, so any interleaving of entity activity replays
//    bit-for-bit.
//
// Handlers schedule follow-up work through their EventContext, which
// buffers the requests; the engine merges buffered requests in batch
// order after the batch completes, so parallel workers never touch the
// queue and the assigned sequence numbers are reproducible.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>
#include <string>
#include <vector>

#include "src/common/event_queue.hpp"

namespace talon {

class EventContext;

/// Dense entity handle returned by EventEngine::add_entity.
using EntityId = std::uint64_t;

using EventFn = std::function<void(EventContext&)>;

/// When and as what an event is scheduled.
struct EventSpec {
  double time_s{0.0};
  EntityId entity{0};
  /// Phase within the timestamp; lower runs first.
  int priority{0};
  /// True iff the handler touches only its own entity's state (the
  /// commuting-batch rule above). Only commuting events may run in
  /// parallel with each other.
  bool commuting{false};
};

struct EventEngineConfig {
  /// Worker threads for commuting batches; <= 0 uses the executor
  /// default (common/parallel.hpp).
  int threads{0};
};

struct EventEngineStats {
  std::uint64_t executed{0};
  std::uint64_t batches{0};
  /// Batches that actually fanned out over parallel workers.
  std::uint64_t parallel_batches{0};
  std::size_t peak_queue{0};
};

class EventEngine {
 public:
  explicit EventEngine(EventEngineConfig config = {});

  /// Register an entity; ids are dense and assigned in call order (they
  /// are the stable tie-break of the event order, so registration order
  /// is part of the determinism contract). `name` is for diagnostics.
  EntityId add_entity(std::string name);

  std::size_t entity_count() const { return entity_names_.size(); }
  const std::string& entity_name(EntityId entity) const;

  /// Schedule an event from outside the run loop (initial conditions).
  /// Inside a handler, use EventContext::schedule instead.
  void schedule(const EventSpec& spec, EventFn fn);

  /// Execute events in canonical order until the queue is empty or the
  /// next event is later than `until_s`. Returns events executed by this
  /// call. now() advances to each batch's timestamp.
  std::size_t run(double until_s = std::numeric_limits<double>::infinity());

  double now() const { return now_s_; }
  const EventEngineStats& stats() const { return stats_; }

 private:
  friend class EventContext;

  struct Ev {
    EventFn fn;
    bool commuting{false};
  };

  void validate_spec(const EventSpec& spec, bool from_handler) const;

  EventEngineConfig config_;
  EventQueue<Ev> queue_;
  std::vector<std::string> entity_names_;
  double now_s_{-std::numeric_limits<double>::infinity()};
  int current_priority_{std::numeric_limits<int>::min()};
  bool running_{false};
  EventEngineStats stats_;
};

/// Handed to each executing handler. Scheduling goes through the context
/// so handlers in a parallel batch never touch the shared queue: requests
/// are buffered per entity group and merged deterministically after the
/// batch. A context is owned by exactly one worker at a time.
class EventContext {
 public:
  EventContext(const EventEngine* engine, EntityId entity)
      : engine_(engine), entity_(entity) {}

  double now() const { return engine_->now_s_; }
  EntityId entity() const { return entity_; }

  /// Buffer a follow-up event. The spec must order strictly after the
  /// executing batch: a later timestamp, or the same timestamp with a
  /// higher priority (otherwise the event would have to run inside an
  /// already-draining batch, which has no deterministic meaning).
  void schedule(const EventSpec& spec, EventFn fn);

 private:
  friend class EventEngine;

  struct Deferred {
    EventSpec spec;
    EventFn fn;
  };

  const EventEngine* engine_;
  EntityId entity_;
  std::vector<Deferred> deferred_;
};

}  // namespace talon
