// Simulates over-the-air beam-training exchanges between two nodes.
//
// For every slot of a burst schedule the transmitter switches to the
// slot's sector, the channel fixes the true SNR at the receiver's
// quasi-omni sector, and the receiver's measurement model decides whether
// the frame decodes and what SNR/RSSI the firmware reports. Decoded SSW
// frames are delivered into the receiver's FullMacFirmware exactly as on
// the real chip; a monitor node may overhear everything transmitted.
#pragma once

#include <optional>
#include <span>

#include "src/channel/environment.hpp"
#include "src/core/refinement.hpp"
#include "src/mac/monitor.hpp"
#include "src/mac/schedule.hpp"
#include "src/mac/sweep.hpp"
#include "src/mac/timing.hpp"
#include "src/phy/measurement.hpp"
#include "src/sim/node.hpp"

namespace talon {

/// Result of one transmit sector sweep.
struct SweepOutcome {
  /// What the receiver's firmware measured (decoded frames only).
  SweepMeasurement measurement;
  /// The feedback field the receiver produced (stock argmax or override).
  SswFeedbackField feedback;
  /// Frames actually transmitted (one per non-silent slot).
  int transmitted_frames{0};
};

class LinkSimulator {
 public:
  LinkSimulator(const Environment& env, const RadioConfig& radio,
                const MeasurementModelConfig& measurement, Rng rng);

  /// True link SNR for an arbitrary sector pair at the current poses.
  double true_snr_db(const Node& tx, int tx_sector, const Node& rx,
                     int rx_sector) const;

  /// Run one TXSS burst from `tx` through `schedule`; the receiver listens
  /// on its quasi-omni sector and its firmware accumulates the readings.
  SweepOutcome transmit_sweep(Node& tx, Node& rx,
                              std::span<const BurstSlot> schedule,
                              MonitorCapture* monitor = nullptr);

  /// Run one beacon burst (no firmware feedback; mainly for monitoring).
  int transmit_beacons(Node& tx, MonitorCapture* monitor = nullptr);

  /// Run the complete bidirectional TXSS protocol (initiator sweep,
  /// responder sweep with feedback, SSW-Feedback, SSW-ACK) through both
  /// nodes' firmware. Each side sweeps `schedule`; management frames
  /// (feedback/ACK) are sent with the sender's freshly selected sector and
  /// can be lost like any other frame.
  MutualTrainingResult mutual_training(Node& initiator, Node& responder,
                                       std::span<const BurstSlot> schedule,
                                       MonitorCapture* monitor = nullptr);

  /// True link SNR for an arbitrary AWV at the transmitter.
  double true_snr_with_weights(const Node& tx, const WeightVector& weights,
                               const Node& rx, int rx_sector) const;

  /// Receive sector sweep (RXSS): the transmitter repeats frames on its
  /// (fixed) trained TX sector while the receiver cycles its own sectors
  /// and records one reading per receive sector. The Talon never does
  /// this ("the same quasi omni-directional sector is always used for
  /// reception", Sec. 4.1); this is the extension that quantifies what
  /// that leaves on the table. Returns the per-RX-sector measurement; the
  /// receiver's firmware is not involved (readings are local by nature).
  SweepMeasurement receive_sector_sweep(Node& tx, Node& rx,
                                        std::span<const int> rx_sectors);

  /// BRP-style refinement: the transmitter tries fine-quantized AWVs
  /// around `around` (typically the CSS direction estimate), the receiver
  /// reports each probe's SNR, the best AWV wins. Probe frames can be lost
  /// like any other frame.
  RefinementResult refine_tx_beam(Node& tx, Node& rx, const Direction& around,
                                  const RefinementConfig& config = {});

  const TimingModel& timing() const { return timing_; }
  const RadioConfig& radio() const { return radio_; }

 private:
  const Environment* env_;
  RadioConfig radio_;
  MeasurementModel measurement_;
  TimingModel timing_;
};

}  // namespace talon
