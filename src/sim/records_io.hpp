// Persistence for recorded sweeps.
//
// The paper's workflow separates data collection on the routers from
// offline analysis ("we then perform offline analyses in MATLAB",
// Sec. 6.1). records_to_csv/records_from_csv are that boundary: dump the
// recording pass to a file, re-run any analysis later without re-running
// the testbed. One row per reading:
//   record_index, pose_index, physical_azimuth_deg, physical_elevation_deg,
//   sector_id, snr_db, rssi_dbm
// Sweeps where nothing decoded still appear (one sentinel row with
// sector_id = -1) so record counts survive the round trip.
#pragma once

#include <vector>

#include "src/common/csv.hpp"
#include "src/sim/experiment.hpp"

namespace talon {

CsvTable records_to_csv(const std::vector<SweepRecord>& records);

/// Inverse of records_to_csv; throws ParseError on malformed input.
std::vector<SweepRecord> records_from_csv(const CsvTable& table);

}  // namespace talon
