// Multi-link dense-deployment simulator (the Sec. 7 regime, simulated).
//
// K AP-STA pairs share one Environment and one mm-wave channel. Every
// round each pair runs a mutual TXSS training with a CSS probing subset;
// the pair's LinkSession (owned by one shared CssDaemon) drains the
// responder's sweep-info ring, runs compressive selection on the shared
// PatternAssets, and installs the sector override that steers the next
// round's feedback. Because quasi-omni reception makes every sweep pollute
// the whole channel, the round's K trainings are serialized on the single
// channel with sim/contention's arithmetic -- deferrals and airtime fall
// out of the same model the closed-form estimate uses.
//
// Since the discrete-event refactor this class is a thin compatibility
// facade over sim/event_engine: round r is one engine timestamp, the
// per-link physical work is a commuting event batch (one link entity per
// worker), then a serial daemon event runs the round's selections as ONE
// batched argmax walk (CssDaemon::complete_prepared -- links probing the
// same subset traverse each response tile while cache-hot), and finally
// the contention phase is a channel-arbiter entity event
// (sim/contention's ChannelArbiter). The facade's selections, deferrals
// and airtime are bit-identical to the pre-engine round-based loop at any
// thread count (pinned by tests/sim/test_network.cpp's golden sequence).
//
// Determinism contract: all randomness is drawn from substream_seed
// families whose coordinates are (stream tag, link id, round); a link's
// state (nodes, firmware, session RNG, adaptive controller) is touched
// only by the worker that owns its entity's events, so results are
// bit-identical at any thread count.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "src/channel/environment.hpp"
#include "src/driver/css_daemon.hpp"
#include "src/phy/throughput.hpp"
#include "src/sim/linksim.hpp"
#include "src/sim/node.hpp"

namespace talon {

struct NetworkConfig {
  /// Number of co-channel AP-STA pairs (K).
  int links{4};
  /// Interleaved mutual-training rounds to simulate.
  std::size_t rounds{10};
  /// Trainings per second each pair schedules; one round spans one period.
  double trainings_per_second{1.0};
  /// AP-to-STA distance within a pair [m].
  double link_distance_m{3.0};
  /// Grid spacing between neighbouring pairs [m].
  double pair_spacing_m{2.0};
  RadioConfig radio{};
  MeasurementModelConfig measurement{};
  /// Per-link session defaults (probe count, adaptive controller, tracking).
  CssDaemonConfig session{};
  std::uint64_t seed{1};
  /// Worker threads for the per-round link fan-out; <= 0 uses the default.
  int threads{0};
  /// Optional per-link RNG salt (index = link id, missing = 0). Folded
  /// into that link's session substream only -- perturbing link i must
  /// not change any other link's selections (the isolation tests rely on
  /// this).
  std::vector<std::uint64_t> link_seed_salts{};
};

/// One link's outcome in one round.
struct LinkRoundOutcome {
  /// The mutual TXSS completed (sweeps + feedback + ACK all delivered).
  bool training_success{false};
  /// CSS produced a selection from this round's probes.
  bool selected{false};
  /// Selected initiator TX sector (valid when `selected`).
  int sector_id{-1};
  /// True link SNR at the selected sector [dB] (valid when `selected`).
  double snr_db{0.0};
  /// Probes this link swept this round.
  std::size_t probes{0};
  /// When the link wanted to train vs. when the channel let it [s].
  double desired_start_s{0.0};
  double actual_start_s{0.0};
};

struct NetworkRound {
  /// Indexed by link id.
  std::vector<LinkRoundOutcome> links;
  /// Channel time this round's trainings occupied [s].
  double busy_time_s{0.0};
  int deferred{0};
  double worst_defer_ms{0.0};
};

struct NetworkRunResult {
  std::vector<NetworkRound> rounds;
  /// Fraction of the simulated horizon spent beam training.
  double training_airtime_share{0.0};
  int total_trainings{0};
  int deferred_trainings{0};
  double worst_defer_ms{0.0};
  /// Mean true SNR over all valid selections [dB].
  double mean_selected_snr_db{0.0};
  /// Mean data goodput per link [Mbps]: the per-link throughput at its
  /// selected sectors, scaled by the data airtime left after training and
  /// shared round-robin by the K pairs (the contention model's convention).
  double goodput_per_link_mbps{0.0};
  /// Sum of all links' fault counters (all zero when the session config
  /// carries no fault plan).
  FaultStats fault_totals{};
  /// Sum of all links' degradation counters (all zero when degradation is
  /// disabled).
  DegradationStats degradation_totals{};
  /// Sum of all links' lifecycle transition counters and time-in-state
  /// aggregates (unit: rounds); zero unless degradation is enabled.
  /// Bit-comparable across thread counts like fault_totals.
  LifecycleStats lifecycle_totals{};
};

class NetworkSimulator {
 public:
  /// Places 2K nodes on a grid inside `environment` and registers one
  /// LinkSession per pair with a single daemon over `assets` (the shared
  /// immutable pattern data every session reads). The environment must
  /// outlive the simulator.
  NetworkSimulator(NetworkConfig config, const Environment& environment,
                   std::shared_ptr<const PatternAssets> assets);

  /// Simulate config.rounds interleaved training rounds.
  NetworkRunResult run(const ThroughputModel& throughput = ThroughputModel{});

  int link_count() const { return static_cast<int>(links_.size()); }

  CssDaemon& daemon() { return daemon_; }
  const CssDaemon& daemon() const { return daemon_; }

  const std::shared_ptr<const PatternAssets>& assets() const {
    return daemon_.assets();
  }

  const Node& initiator(int link) const { return *links_[link].initiator; }
  const Node& responder(int link) const { return *links_[link].responder; }

 private:
  struct Link {
    std::unique_ptr<Node> initiator;  ///< AP side: swept toward the STA.
    std::unique_ptr<Node> responder;  ///< STA side: measures and selects.
    std::unique_ptr<Wil6210Driver> driver;  ///< bound to the responder.
    /// Schedule jitter within the training period (fixed per link).
    double phase_s{0.0};
  };

  /// The physical phase of one link in one round (the commuting event
  /// body): sweep, drain the ring, and park the sweep for the serial
  /// selection phase (the daemon's batched complete_prepared event).
  void train_link(std::size_t link, std::size_t round, LinkRoundOutcome& out);

  NetworkConfig config_;
  const Environment* environment_;
  CssDaemon daemon_;
  std::vector<Link> links_;
};

}  // namespace talon
