#include "src/sim/mobility.hpp"

#include <algorithm>
#include <cmath>
#include <memory>

#include "src/antenna/codebook.hpp"
#include "src/common/error.hpp"
#include "src/common/rng.hpp"
#include "src/common/stats.hpp"
#include "src/driver/css_daemon.hpp"
#include "src/mac/schedule.hpp"
#include "src/sim/event_engine.hpp"
#include "src/sim/scenario.hpp"

namespace talon {

namespace {

// Priority phases of one training slot: the world entities publish first,
// the arm entities read the published snapshot.
constexpr int kWorldPhase = 0;
constexpr int kArmPhase = 1;

/// Exponential gap with the given rate, from one indexed substream draw.
/// Floored at a nanosecond: a zero gap would ask the engine to schedule
/// into the executing batch, which it rejects.
double exponential_gap(Rng& rng, double rate_hz) {
  return std::max(-std::log1p(-rng.uniform(0.0, 1.0)) / rate_hz, 1e-9);
}

/// The world snapshot the phase-0 entities publish and the phase-1 arms
/// copy. Fields are partitioned by writer (walker: pose; blockage:
/// blocked; churn: reflector_enabled), so the phase-0 events commute.
struct WorldState {
  Vec3 sta_position;
  double sta_yaw_deg{180.0};
  bool blocked{false};
  std::vector<char> reflector_enabled;
};

/// One selection strategy's private rig: its own venue (nodes +
/// environment copy), channel, driver, daemon, and episode tracker. Arm
/// events touch nothing outside their own rec (plus the read-only world
/// snapshot), which is what lets the three arms fan out in parallel.
struct ArmRec {
  ArmRec(MobilityArm which, const MobilityConfig& config,
         const PatternTable& table, EntityId entity_id)
      : arm(which),
        entity(entity_id),
        venue(make_conference_scenario(config.dut_seed)),
        link(venue.make_link(Rng(substream_seed(
            config.seed, streams::event_entity_tag(entity_id), 1)))),
        driver(venue.peer->firmware()) {
    environment = dynamic_cast<RayTracedEnvironment*>(venue.environment.get());
    TALON_EXPECTS(environment != nullptr);

    CssDaemonConfig daemon_config;
    daemon_config.probes = config.probes;
    switch (arm) {
      case MobilityArm::kSswArgmax:
        // Pin the lifecycle in Acquisition: the first (priming) round can
        // never be healthy and the recovery window outlives any horizon,
        // so every scored round is a full SSW sweep + stock argmax.
        daemon_config.degradation.enabled = true;
        daemon_config.degradation.min_confidence = 1e18;
        daemon_config.degradation.max_consecutive_failures = 1;
        daemon_config.degradation.recovery_rounds = 1'000'000'000;
        break;
      case MobilityArm::kTrackingCss:
        daemon_config.track_path = true;
        [[fallthrough]];
      case MobilityArm::kCss:
        // The robustness layer under test: confidence-gated degradation
        // with the tuned defaults, so blockage outages trip full-sweep
        // re-acquisition exactly like the fault campaign.
        daemon_config.degradation.enabled = true;
        break;
    }
    daemon = std::make_unique<CssDaemon>(
        driver, table, daemon_config,
        Rng(substream_seed(config.seed, streams::event_entity_tag(entity_id), 2)));
    if (arm == MobilityArm::kSswArgmax) {
      // Trip the pinned fallback with one empty drain (no readings, no
      // channel draws): from round 0 on the arm probes every sector.
      daemon->process_sweep();
    }
  }

  MobilityArm arm;
  EntityId entity;
  Scenario venue;
  LinkSimulator link;
  Wil6210Driver driver;
  RayTracedEnvironment* environment{nullptr};
  std::unique_ptr<CssDaemon> daemon;
  // Campaign accumulators.
  std::uint64_t rounds{0};
  std::uint64_t outage_rounds{0};
  double loss_sum{0.0};
  double worst_loss_db{0.0};
  std::vector<double> realign_latencies_s;
  bool in_episode{false};
  double episode_start_s{0.0};
};

}  // namespace

const char* to_string(MobilityArm arm) {
  switch (arm) {
    case MobilityArm::kSswArgmax: return "ssw_argmax";
    case MobilityArm::kCss: return "css";
    case MobilityArm::kTrackingCss: return "tracking_css";
  }
  return "?";
}

MobilitySimulator::MobilitySimulator(MobilityConfig config,
                                     const PatternTable& table)
    : config_(std::move(config)), table_(&table) {
  TALON_EXPECTS(config_.duration_s > 0.0);
  TALON_EXPECTS(config_.training_interval_s > 0.0);
  TALON_EXPECTS(config_.probes >= 1);
  TALON_EXPECTS(config_.walk.speed_mps >= 0.0);
  TALON_EXPECTS(config_.blockage.rate_hz >= 0.0);
  TALON_EXPECTS(config_.blockage.mean_duration_s > 0.0);
  TALON_EXPECTS(config_.blockage.attenuation_db >= 0.0);
  TALON_EXPECTS(config_.churn.rate_hz >= 0.0);
  TALON_EXPECTS(config_.realign_loss_db > 0.0);
  TALON_EXPECTS(config_.outage_loss_db > config_.realign_loss_db);

  if (config_.walk.waypoints.empty()) {
    // A loop through the conference room, inside the reflector box
    // (y in (-2.8, 2.2), ceiling 2.8) and away from the AP at the origin.
    config_.walk.waypoints = {
        Vec3{3.0, 0.0, 1.0},
        Vec3{5.5, 1.6, 1.0},
        Vec3{4.5, -2.0, 1.0},
        Vec3{2.5, -1.0, 1.0},
    };
  }
  cumulative_m_.reserve(config_.walk.waypoints.size() + 1);
  cumulative_m_.push_back(0.0);
  const std::vector<Vec3>& w = config_.walk.waypoints;
  for (std::size_t i = 0; i < w.size(); ++i) {
    const Vec3& from = w[i];
    const Vec3& to = w[(i + 1) % w.size()];
    cumulative_m_.push_back(cumulative_m_.back() + norm(to - from));
  }
  loop_length_m_ = cumulative_m_.back();
}

Vec3 MobilitySimulator::position_at(double t_s) const {
  const std::vector<Vec3>& w = config_.walk.waypoints;
  if (loop_length_m_ <= 0.0 || config_.walk.speed_mps <= 0.0) return w.front();
  const double s = std::fmod(config_.walk.speed_mps * t_s, loop_length_m_);
  for (std::size_t i = 0; i + 1 < cumulative_m_.size(); ++i) {
    if (s > cumulative_m_[i + 1]) continue;
    const double seg_len = cumulative_m_[i + 1] - cumulative_m_[i];
    const double f = seg_len > 0.0 ? (s - cumulative_m_[i]) / seg_len : 0.0;
    const Vec3& from = w[i];
    const Vec3& to = w[(i + 1) % w.size()];
    return from + f * (to - from);
  }
  return w.front();
}

double MobilitySimulator::rotation_offset_deg_at(double t_s) const {
  const double amplitude = config_.walk.rotation_amplitude_deg;
  const double rate = config_.walk.rotation_deg_per_s;
  if (amplitude <= 0.0 || rate <= 0.0) return 0.0;
  // Triangle wave: 0 at t = 0, swinging between -amplitude and +amplitude
  // at `rate` degrees per second.
  const double x = std::fmod(rate * t_s + amplitude, 4.0 * amplitude);
  return std::abs(x - 2.0 * amplitude) - amplitude;
}

MobilityRunResult MobilitySimulator::run() {
  const double interval = config_.training_interval_s;
  const std::size_t slot_count = std::max<std::size_t>(
      1, static_cast<std::size_t>(config_.duration_s / interval + 1e-9));

  EventEngine engine(EventEngineConfig{.threads = config_.threads});
  const EntityId walker = engine.add_entity("walker");
  const EntityId blockage = engine.add_entity("blockage");
  const EntityId churn = engine.add_entity("churn");
  std::vector<std::unique_ptr<ArmRec>> arms;
  arms.reserve(kMobilityArmCount);
  for (std::size_t a = 0; a < kMobilityArmCount; ++a) {
    const MobilityArm which = static_cast<MobilityArm>(a);
    const EntityId entity =
        engine.add_entity(std::string("arm-") + to_string(which));
    arms.push_back(std::make_unique<ArmRec>(which, config_, *table_, entity));
  }

  WorldState world;
  world.sta_position = position_at(0.0);
  world.reflector_enabled.assign(
      arms.front()->environment->reflectors().size(), 1);
  std::uint64_t blockage_events = 0;
  std::uint64_t reflector_toggles = 0;

  // --- walker: publish the trajectory at each slot timestamp ----------------
  std::function<void(EventContext&, std::size_t)> walk_slot =
      [&](EventContext& ctx, std::size_t slot) {
        const double t = ctx.now();
        world.sta_position = position_at(t);
        const Vec3& p = world.sta_position;
        // Base yaw faces the AP at the origin; the rotation offset is the
        // user turning the device away from it.
        constexpr double kRadToDeg = 180.0 / 3.14159265358979323846;
        world.sta_yaw_deg =
            std::atan2(-p.y, -p.x) * kRadToDeg + rotation_offset_deg_at(t);
        if (slot + 1 < slot_count) {
          ctx.schedule(EventSpec{.time_s = static_cast<double>(slot + 1) * interval,
                                 .entity = walker,
                                 .priority = kWorldPhase,
                                 .commuting = true},
                       [&, slot](EventContext& next) { walk_slot(next, slot + 1); });
        }
      };
  engine.schedule(EventSpec{.time_s = 0.0,
                            .entity = walker,
                            .priority = kWorldPhase,
                            .commuting = true},
                  [&](EventContext& ctx) { walk_slot(ctx, 0); });

  // --- blockage: self-scheduling two-state flips ----------------------------
  // Every gap is one indexed substream draw, so the flip timeline depends
  // on nothing but (seed, blockage entity, flip index) -- enabling churn
  // or adding arms cannot move it.
  // Both processes' continuations capture their own recursive
  // std::function by reference, so the functions must outlive
  // engine.run() -- they live at function scope, not inside the ifs.
  std::function<void(EventContext&, std::uint64_t)> flip;
  std::function<void(EventContext&, std::uint64_t)> toggle;
  if (config_.blockage.rate_hz > 0.0) {
    flip =
        [&](EventContext& ctx, std::uint64_t index) {
          world.blocked = !world.blocked;
          ++blockage_events;
          Rng rng(substream_seed(config_.seed,
                                 streams::event_entity_tag(blockage), index));
          const double gap =
              world.blocked
                  ? config_.blockage.mean_duration_s *
                        exponential_gap(rng, 1.0)
                  : exponential_gap(rng, config_.blockage.rate_hz);
          ctx.schedule(EventSpec{.time_s = ctx.now() + gap,
                                 .entity = blockage,
                                 .priority = kWorldPhase,
                                 .commuting = true},
                       [&, index](EventContext& next) { flip(next, index + 1); });
        };
    Rng rng(substream_seed(config_.seed, streams::event_entity_tag(blockage), 0));
    engine.schedule(
        EventSpec{.time_s = exponential_gap(rng, config_.blockage.rate_hz),
                  .entity = blockage,
                  .priority = kWorldPhase,
                  .commuting = true},
        [&](EventContext& ctx) { flip(ctx, 1); });
  }

  // --- reflector churn: self-scheduling toggles -----------------------------
  if (config_.churn.rate_hz > 0.0 && !world.reflector_enabled.empty()) {
    toggle =
        [&](EventContext& ctx, std::uint64_t index) {
          Rng rng(substream_seed(config_.seed,
                                 streams::event_entity_tag(churn), index));
          const int which = rng.uniform_int(
              0, static_cast<int>(world.reflector_enabled.size()) - 1);
          world.reflector_enabled[static_cast<std::size_t>(which)] ^= 1;
          ++reflector_toggles;
          ctx.schedule(EventSpec{.time_s = ctx.now() +
                                           exponential_gap(rng, config_.churn.rate_hz),
                                 .entity = churn,
                                 .priority = kWorldPhase,
                                 .commuting = true},
                       [&, index](EventContext& next) { toggle(next, index + 1); });
        };
    Rng rng(substream_seed(config_.seed, streams::event_entity_tag(churn), 0));
    engine.schedule(EventSpec{.time_s = exponential_gap(rng, config_.churn.rate_hz),
                              .entity = churn,
                              .priority = kWorldPhase,
                              .commuting = true},
                    [&](EventContext& ctx) { toggle(ctx, 1); });
  }

  // --- arms: one training round per slot, reading the world snapshot -------
  std::function<void(EventContext&, ArmRec&, std::size_t)> arm_round =
      [&](EventContext& ctx, ArmRec& rec, std::size_t slot) {
        // Copy the published world into this arm's private rig.
        rec.venue.peer->pose().position = world.sta_position;
        rec.venue.peer->pose().orientation =
            DeviceOrientation(world.sta_yaw_deg, 0.0);
        rec.environment->set_los_blockage_db(
            world.blocked ? config_.blockage.attenuation_db : 0.0);
        for (std::size_t i = 0; i < world.reflector_enabled.size(); ++i) {
          rec.environment->set_reflector_enabled(i,
                                                 world.reflector_enabled[i] != 0);
        }

        double best = -1e300;
        for (int id : talon_tx_sector_ids()) {
          best = std::max(best, rec.link.true_snr_db(*rec.venue.dut, id,
                                                     *rec.venue.peer,
                                                     kRxQuasiOmniSectorId));
        }
        rec.link.transmit_sweep(*rec.venue.dut, *rec.venue.peer,
                                probing_burst_schedule(rec.daemon->next_probe_subset()));
        rec.daemon->process_sweep();
        // The beam the STA actually rides: the standing override, or the
        // firmware's stock argmax when nothing was installed yet.
        const FullMacFirmware& fw = rec.venue.peer->firmware();
        const int beam = fw.sector_override().value_or(fw.selected_sector());
        const double loss =
            best - rec.link.true_snr_db(*rec.venue.dut, beam, *rec.venue.peer,
                                        kRxQuasiOmniSectorId);

        ++rec.rounds;
        rec.loss_sum += loss;
        rec.worst_loss_db = std::max(rec.worst_loss_db, loss);
        if (loss > config_.outage_loss_db) {
          ++rec.outage_rounds;
          if (!rec.in_episode) {
            rec.in_episode = true;
            rec.episode_start_s = ctx.now();
          }
        } else if (rec.in_episode && loss <= config_.realign_loss_db) {
          rec.in_episode = false;
          rec.realign_latencies_s.push_back(ctx.now() - rec.episode_start_s);
        }

        if (slot + 1 < slot_count) {
          ctx.schedule(EventSpec{.time_s = static_cast<double>(slot + 1) * interval,
                                 .entity = rec.entity,
                                 .priority = kArmPhase,
                                 .commuting = true},
                       [&, slot, r = &rec](EventContext& next) {
                         arm_round(next, *r, slot + 1);
                       });
        }
      };
  for (const std::unique_ptr<ArmRec>& rec : arms) {
    engine.schedule(EventSpec{.time_s = 0.0,
                              .entity = rec->entity,
                              .priority = kArmPhase,
                              .commuting = true},
                    [&, r = rec.get()](EventContext& ctx) { arm_round(ctx, *r, 0); });
  }

  engine.run(config_.duration_s);

  // --- aggregation (serial, arm order) --------------------------------------
  MobilityRunResult result;
  result.simulated_s = static_cast<double>(slot_count) * interval;
  result.events_executed = engine.stats().executed;
  result.parallel_batches = engine.stats().parallel_batches;
  result.blockage_events = blockage_events;
  result.reflector_toggles = reflector_toggles;
  result.arms.reserve(kMobilityArmCount);
  for (const std::unique_ptr<ArmRec>& rec : arms) {
    MobilityArmResult out;
    out.arm = rec->arm;
    out.rounds = rec->rounds;
    out.outage_rounds = rec->outage_rounds;
    out.outage_fraction = rec->rounds > 0
                              ? static_cast<double>(rec->outage_rounds) /
                                    static_cast<double>(rec->rounds)
                              : 0.0;
    out.mean_loss_db =
        rec->rounds > 0 ? rec->loss_sum / static_cast<double>(rec->rounds) : 0.0;
    out.worst_loss_db = rec->worst_loss_db;
    out.realign_episodes = rec->realign_latencies_s.size();
    out.unrecovered_episodes = rec->in_episode ? 1 : 0;
    // quantile() requires non-empty input; a campaign with no closed
    // episode reports the sentinel instead (kNoRealignSentinel).
    if (!rec->realign_latencies_s.empty()) {
      out.median_realign_s = quantile(rec->realign_latencies_s, 0.5);
      out.p90_realign_s = quantile(rec->realign_latencies_s, 0.9);
      out.worst_realign_s = *std::max_element(rec->realign_latencies_s.begin(),
                                              rec->realign_latencies_s.end());
    }
    out.lifecycle = rec->daemon->total_lifecycle_stats();
    result.arms.push_back(out);
  }
  return result;
}

}  // namespace talon
