#include "src/sim/mesh.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include "src/channel/pathloss.hpp"
#include "src/common/error.hpp"
#include "src/common/rng.hpp"
#include "src/mac/timing.hpp"
#include "src/phy/throughput.hpp"
#include "src/sim/contention.hpp"
#include "src/sim/event_engine.hpp"

namespace talon {

namespace {

// Priority phases of one scan slot. The controller dispatch is the only
// non-commuting phase; everything after it fans out over workers.
constexpr int kDispatchPhase = 0;  ///< controller: ignition + scan orders
constexpr int kPreparePhase = 1;   ///< minions: churn, jitter, requests
constexpr int kArbitratePhase = 2; ///< channel arbiters: serialization
constexpr int kApplyPhase = 3;     ///< minions: grants -> link states

/// Mutable per-link state (controller-side record + minion scratch). A
/// link's record is written only by its owning AP's minion events and its
/// channel's arbiter event, which run in different priority phases --
/// never concurrently.
struct LinkRec {
  int ap{-1};
  int channel{-1};
  /// The shared Up/Unstable/Acquisition/Down machine; mesh links are born
  /// Down and wait for controller ignition.
  LinkLifecycle lifecycle{LinkLifecycleConfig{}, LinkState::kDown};
  double distance_m{0.0};
  double snr_db{0.0};
  // Slot scratch, valid between dispatch and apply of one slot.
  bool due{false};
  bool requested{false};
  bool granted{false};
  double desired_s{0.0};
  double duration_s{0.0};
  double actual_s{0.0};
  // Cumulative outcome.
  double ignition_time_s{-1.0};
  std::uint64_t trainings{0};
  std::uint64_t deferrals{0};
  std::uint64_t reassociations{0};
  std::uint64_t churn_drops{0};
  double worst_defer_ms{0.0};
};

struct ChannelTotals {
  double busy_time_s{0.0};
  int trainings{0};
  int deferred{0};
  double worst_defer_ms{0.0};
};

std::uint64_t link_salt(const MeshConfig& config, std::size_t link) {
  return link < config.link_seed_salts.size() ? config.link_seed_salts[link] : 0;
}

}  // namespace

MeshSimulator::MeshSimulator(MeshConfig config) : config_(std::move(config)) {
  TALON_EXPECTS(config_.aps >= 1);
  TALON_EXPECTS(config_.stas_per_ap >= 1);
  TALON_EXPECTS(config_.channels >= 1);
  TALON_EXPECTS(config_.trainings_per_second > 0.0);
  TALON_EXPECTS(config_.simulated_seconds > 0.0);
  TALON_EXPECTS(config_.ignition_batch >= 1);
  TALON_EXPECTS(config_.probes >= 1);
  TALON_EXPECTS(config_.min_sta_distance_m > 0.0);
  TALON_EXPECTS(config_.max_sta_distance_m >= config_.min_sta_distance_m);
  TALON_EXPECTS(config_.churn_probability >= 0.0 && config_.churn_probability <= 1.0);

  // Topology store: APs on a square grid, channels assigned round-robin
  // (neighbouring APs land on different channels -- frequency reuse).
  const int cols = static_cast<int>(
      std::ceil(std::sqrt(static_cast<double>(config_.aps))));
  aps_.reserve(static_cast<std::size_t>(config_.aps));
  for (int a = 0; a < config_.aps; ++a) {
    aps_.push_back(MeshAp{
        .id = a,
        .x_m = (a % cols) * config_.ap_spacing_m,
        .y_m = (a / cols) * config_.ap_spacing_m,
        .channel = a % config_.channels,
    });
  }
}

MeshRunResult MeshSimulator::run() {
  const TimingModel timing;
  const ThroughputModel throughput;
  const double period_s = 1.0 / config_.trainings_per_second;
  const std::size_t total_links = static_cast<std::size_t>(link_count());
  const std::size_t slots = std::max<std::size_t>(
      1, static_cast<std::size_t>(config_.simulated_seconds / period_s));

  // --- controller-side stores -----------------------------------------------
  std::vector<LinkRec> links(total_links);
  std::vector<std::vector<std::size_t>> ap_links(
      static_cast<std::size_t>(config_.aps));
  std::vector<std::vector<std::size_t>> channel_links(
      static_cast<std::size_t>(config_.channels));
  for (std::size_t l = 0; l < total_links; ++l) {
    LinkRec& rec = links[l];
    rec.ap = static_cast<int>(l) / config_.stas_per_ap;
    rec.channel = aps_[static_cast<std::size_t>(rec.ap)].channel;
    // Placement: distance and shadowing are the link's own substream, so
    // topology randomness never couples links.
    Rng placement(substream_seed(config_.seed, streams::kMeshPlacement,
                                 static_cast<std::uint64_t>(l), 0,
                                 link_salt(config_, l)));
    rec.distance_m =
        placement.uniform(config_.min_sta_distance_m, config_.max_sta_distance_m);
    rec.snr_db = config_.snr_at_1m_db +
                 (line_of_sight_gain_db(rec.distance_m) -
                  line_of_sight_gain_db(1.0)) +
                 placement.normal(config_.shadowing_db);
    ap_links[static_cast<std::size_t>(rec.ap)].push_back(l);
    channel_links[static_cast<std::size_t>(rec.channel)].push_back(l);
  }
  std::vector<ChannelArbiter> arbiters(static_cast<std::size_t>(config_.channels));
  std::vector<ChannelTotals> channel_totals(
      static_cast<std::size_t>(config_.channels));

  // --- entities --------------------------------------------------------------
  EventEngine engine(EventEngineConfig{.threads = config_.threads});
  const EntityId controller = engine.add_entity("controller");
  std::vector<EntityId> minions;
  minions.reserve(static_cast<std::size_t>(config_.aps));
  for (int a = 0; a < config_.aps; ++a) {
    minions.push_back(engine.add_entity("minion-ap-" + std::to_string(a)));
  }
  std::vector<EntityId> arbiter_entities;
  arbiter_entities.reserve(static_cast<std::size_t>(config_.channels));
  for (int c = 0; c < config_.channels; ++c) {
    arbiter_entities.push_back(engine.add_entity("channel-" + std::to_string(c)));
  }

  const double training_duration_s =
      timing.mutual_training_time_ms(static_cast<int>(config_.probes)) / 1000.0;
  const double association_duration_s =
      timing.mutual_training_time_ms(kFullSweepProbes) / 1000.0;

  // --- one scan slot ---------------------------------------------------------
  // dispatch (controller, serial): ignition waves + scan orders. Marks the
  // due set, then fans the slot out: prepare (minions, commuting) ->
  // arbitrate (channel arbiters, commuting across channels) -> apply
  // (minions, commuting). The controller self-schedules the next slot.
  std::function<void(EventContext&, std::size_t)> dispatch =
      [&](EventContext& ctx, std::size_t slot) {
        const double slot_start_s = ctx.now();
        int budget = config_.ignition_batch;
        std::vector<bool> ap_due(static_cast<std::size_t>(config_.aps), false);
        std::vector<bool> channel_due(static_cast<std::size_t>(config_.channels),
                                      false);
        for (std::size_t l = 0; l < total_links; ++l) {
          LinkRec& rec = links[l];
          if (rec.lifecycle.state() == LinkState::kDown && budget > 0) {
            rec.lifecycle.apply(LinkEvent::kIgnite);  // (re-)ignition order
            --budget;
          }
          // Time-in-state accrues once per slot, here in the serial
          // controller phase so Down links are covered too. The slot
          // counts toward the state the link holds after ignition orders;
          // transitions later in the slot (drop, association completion)
          // show up from the next slot on.
          rec.lifecycle.advance(period_s);
          if (rec.lifecycle.state() != LinkState::kDown) {
            rec.due = true;
            ap_due[static_cast<std::size_t>(rec.ap)] = true;
            channel_due[static_cast<std::size_t>(rec.channel)] = true;
          }
        }

        for (int a = 0; a < config_.aps; ++a) {
          if (!ap_due[static_cast<std::size_t>(a)]) continue;
          ctx.schedule(
              EventSpec{.time_s = slot_start_s,
                        .entity = minions[static_cast<std::size_t>(a)],
                        .priority = kPreparePhase,
                        .commuting = true},
              [&, a, slot](EventContext&) {
                for (const std::size_t l : ap_links[static_cast<std::size_t>(a)]) {
                  LinkRec& rec = links[l];
                  if (!rec.due) continue;
                  if (rec.lifecycle.state() == LinkState::kUp &&
                      config_.churn_probability > 0.0 &&
                      Rng(substream_seed(config_.seed, streams::kMeshChurn,
                                         static_cast<std::uint64_t>(l), slot,
                                         link_salt(config_, l)))
                          .bernoulli(config_.churn_probability)) {
                    rec.lifecycle.apply(LinkEvent::kDrop);  // transient blockage
                    rec.due = false;
                    ++rec.churn_drops;
                    continue;
                  }
                  const double jitter =
                      Rng(substream_seed(config_.seed, streams::kMeshJitter,
                                         static_cast<std::uint64_t>(l), slot,
                                         link_salt(config_, l)))
                          .uniform(0.0, period_s);
                  rec.desired_s = static_cast<double>(slot) * period_s + jitter;
                  rec.duration_s = rec.lifecycle.state() == LinkState::kAcquisition
                                       ? association_duration_s
                                       : training_duration_s;
                  rec.requested = true;
                }
              });
          ctx.schedule(
              EventSpec{.time_s = slot_start_s,
                        .entity = minions[static_cast<std::size_t>(a)],
                        .priority = kApplyPhase,
                        .commuting = true},
              [&, a](EventContext&) {
                for (const std::size_t l : ap_links[static_cast<std::size_t>(a)]) {
                  LinkRec& rec = links[l];
                  if (!rec.due) continue;
                  if (rec.requested && rec.granted) {
                    if (rec.lifecycle.state() == LinkState::kAcquisition) {
                      // The granted association sweep serves the whole
                      // ignition window (ignition_rounds = 1): -> Up.
                      rec.lifecycle.apply(LinkEvent::kAcquireRound);
                      const double done_s = rec.actual_s + rec.duration_s;
                      if (rec.ignition_time_s < 0.0) {
                        rec.ignition_time_s = done_s;
                      } else {
                        ++rec.reassociations;
                      }
                    } else {
                      rec.lifecycle.apply(LinkEvent::kHealthy);
                      ++rec.trainings;
                    }
                  }
                  rec.due = rec.requested = rec.granted = false;
                }
              });
        }

        for (int c = 0; c < config_.channels; ++c) {
          if (!channel_due[static_cast<std::size_t>(c)]) continue;
          ctx.schedule(
              EventSpec{.time_s = slot_start_s,
                        .entity = arbiter_entities[static_cast<std::size_t>(c)],
                        .priority = kArbitratePhase,
                        .commuting = true},
              [&, c](EventContext&) {
                ChannelArbiter& arbiter = arbiters[static_cast<std::size_t>(c)];
                for (const std::size_t l :
                     channel_links[static_cast<std::size_t>(c)]) {
                  const LinkRec& rec = links[l];
                  if (rec.due && rec.requested) {
                    arbiter.submit(static_cast<std::uint64_t>(l), rec.desired_s,
                                   rec.duration_s);
                  }
                }
                const ChannelArbiter::Outcome outcome = arbiter.arbitrate();
                for (const ChannelArbiter::Grant& grant : outcome.grants) {
                  LinkRec& rec = links[grant.key];
                  rec.actual_s = grant.actual_s;
                  rec.granted = true;
                  if (grant.actual_s > grant.desired_s) {
                    ++rec.deferrals;
                    rec.worst_defer_ms =
                        std::max(rec.worst_defer_ms,
                                 (grant.actual_s - grant.desired_s) * 1000.0);
                  }
                }
                ChannelTotals& totals = channel_totals[static_cast<std::size_t>(c)];
                totals.busy_time_s += outcome.busy_time_s;
                totals.trainings += static_cast<int>(outcome.grants.size());
                totals.deferred += outcome.deferred;
                totals.worst_defer_ms =
                    std::max(totals.worst_defer_ms, outcome.worst_defer_ms);
              });
        }

        if (slot + 1 < slots) {
          ctx.schedule(
              EventSpec{.time_s = static_cast<double>(slot + 1) * period_s,
                        .entity = controller,
                        .priority = kDispatchPhase,
                        .commuting = false},
              [&, slot](EventContext& next) { dispatch(next, slot + 1); });
        }
      };

  engine.schedule(EventSpec{.time_s = 0.0,
                            .entity = controller,
                            .priority = kDispatchPhase,
                            .commuting = false},
                  [&](EventContext& ctx) { dispatch(ctx, 0); });
  engine.run();

  // --- network-wide accounting ----------------------------------------------
  MeshRunResult result;
  result.simulated_s = static_cast<double>(slots) * period_s;
  result.events_executed = engine.stats().executed;
  result.parallel_batches = engine.stats().parallel_batches;

  result.channels.resize(static_cast<std::size_t>(config_.channels));
  for (int c = 0; c < config_.channels; ++c) {
    const ChannelTotals& totals = channel_totals[static_cast<std::size_t>(c)];
    MeshChannelReport& report = result.channels[static_cast<std::size_t>(c)];
    report.links = static_cast<int>(channel_links[static_cast<std::size_t>(c)].size());
    report.busy_time_s = totals.busy_time_s;
    report.training_airtime_share =
        std::min(totals.busy_time_s, result.simulated_s) / result.simulated_s;
    report.trainings = totals.trainings;
    report.deferred = totals.deferred;
    report.worst_defer_ms = totals.worst_defer_ms;
    result.total_trainings += static_cast<std::uint64_t>(totals.trainings);
    result.deferred_trainings += static_cast<std::uint64_t>(totals.deferred);
    result.worst_defer_ms = std::max(result.worst_defer_ms, totals.worst_defer_ms);
  }

  result.links.reserve(total_links);
  double ignition_sum = 0.0;
  double snr_sum = 0.0;
  for (const LinkRec& rec : links) {
    result.links.push_back(MeshLinkReport{
        .ap = rec.ap,
        .channel = rec.channel,
        .state = rec.lifecycle.state(),
        .distance_m = rec.distance_m,
        .snr_db = rec.snr_db,
        .ignition_time_s = rec.ignition_time_s,
        .trainings = rec.trainings,
        .deferrals = rec.deferrals,
        .reassociations = rec.reassociations,
        .churn_drops = rec.churn_drops,
        .worst_defer_ms = rec.worst_defer_ms,
        .lifecycle = rec.lifecycle.stats(),
    });
    result.lifecycle_totals += rec.lifecycle.stats();
    if (rec.ignition_time_s >= 0.0) {
      ++result.ignited;
      ignition_sum += rec.ignition_time_s;
      result.max_ignition_s = std::max(result.max_ignition_s, rec.ignition_time_s);
      snr_sum += rec.snr_db;
    }
    result.reassociations += rec.reassociations;
  }
  if (result.ignited > 0) {
    result.mean_ignition_s = ignition_sum / static_cast<double>(result.ignited);
    result.mean_snr_db = snr_sum / static_cast<double>(result.ignited);
  }

  // Aggregated user traffic: each AP's Up links serve its offered load
  // from the data airtime their channel has left, shared round-robin by
  // the co-channel links (the dense simulator's convention).
  result.aps.resize(static_cast<std::size_t>(config_.aps));
  for (int a = 0; a < config_.aps; ++a) {
    MeshApReport& report = result.aps[static_cast<std::size_t>(a)];
    report.offered_mbps = config_.offered_load_per_ap_mbps;
    double capacity = 0.0;
    for (const std::size_t l : ap_links[static_cast<std::size_t>(a)]) {
      const LinkRec& rec = links[l];
      if (rec.lifecycle.state() != LinkState::kUp) continue;
      ++report.up_links;
      const MeshChannelReport& channel =
          result.channels[static_cast<std::size_t>(rec.channel)];
      capacity += throughput.app_throughput_mbps(rec.snr_db) *
                  (1.0 - channel.training_airtime_share) /
                  static_cast<double>(channel.links);
    }
    report.served_mbps = std::min(report.offered_mbps, capacity);
    result.aggregate_goodput_mbps += report.served_mbps;
  }
  return result;
}

}  // namespace talon
