#include "src/sim/linksim.hpp"

#include "src/channel/link.hpp"
#include "src/common/error.hpp"

namespace talon {

LinkSimulator::LinkSimulator(const Environment& env, const RadioConfig& radio,
                             const MeasurementModelConfig& measurement, Rng rng)
    : env_(&env), radio_(radio), measurement_(measurement, rng) {}

double LinkSimulator::true_snr_db(const Node& tx, int tx_sector, const Node& rx,
                                  int rx_sector) const {
  return link_snr_db(tx.front_end(), tx_sector, tx.pose(), rx.front_end(), rx_sector,
                     rx.pose(), *env_, radio_);
}

SweepOutcome LinkSimulator::transmit_sweep(Node& tx, Node& rx,
                                           std::span<const BurstSlot> schedule,
                                           MonitorCapture* monitor) {
  SweepOutcome outcome;
  rx.firmware().begin_peer_sweep();
  int slot_index = 0;
  for (const BurstSlot& slot : schedule) {
    ++slot_index;
    if (!slot.sector_id) continue;  // silent slot
    ++outcome.transmitted_frames;
    const SswField field{
        .cdown = slot.cdown,
        .sector_id = *slot.sector_id,
        .is_initiator = true,
    };
    if (monitor != nullptr) {
      monitor->capture(Frame{
          .type = FrameType::kSectorSweep,
          .source_node = tx.id(),
          .tx_time_us = timing_.ssw_frame_us * (slot_index - 1),
          .ssw = field,
      });
    }
    const double snr =
        true_snr_db(tx, *slot.sector_id, rx, kRxQuasiOmniSectorId);
    if (auto reading = measurement_.measure(*slot.sector_id, snr)) {
      rx.firmware().on_ssw_frame(field, *reading);
      outcome.measurement.readings.push_back(*reading);
    }
  }
  outcome.feedback = rx.firmware().end_peer_sweep();
  return outcome;
}

MutualTrainingResult LinkSimulator::mutual_training(Node& initiator, Node& responder,
                                                    std::span<const BurstSlot> schedule,
                                                    MonitorCapture* monitor) {
  // Delivery of one SSW frame: channel -> measurement -> receiver firmware.
  const auto make_sweep_delivery = [this, monitor](Node& tx, Node& rx) {
    return [this, monitor, &tx, &rx](const Frame& frame) {
      if (monitor != nullptr) monitor->capture(frame);
      if (frame.type == FrameType::kSectorSweep) {
        TALON_EXPECTS(frame.ssw.has_value());
        const double snr =
            true_snr_db(tx, frame.ssw->sector_id, rx, kRxQuasiOmniSectorId);
        if (auto reading = measurement_.measure(frame.ssw->sector_id, snr)) {
          rx.firmware().on_ssw_frame(*frame.ssw, *reading);
          if (frame.feedback) rx.firmware().apply_peer_feedback(*frame.feedback);
          return true;
        }
        return false;
      }
      // Feedback/ACK: transmitted with the sender's trained TX sector.
      const double snr =
          true_snr_db(tx, tx.firmware().own_tx_sector(), rx, kRxQuasiOmniSectorId);
      if (!measurement_.measure(0, snr).has_value()) return false;
      if (frame.feedback) rx.firmware().apply_peer_feedback(*frame.feedback);
      return true;
    };
  };

  std::vector<BurstSlot> sched(schedule.begin(), schedule.end());
  MutualTrainingSession session(
      sched, sched, timing_,
      MutualTrainingSession::Callbacks{
          .deliver_to_responder = make_sweep_delivery(initiator, responder),
          .deliver_to_initiator = make_sweep_delivery(responder, initiator),
          .responder_select =
              [&initiator, &responder] {
                // Close the responder's measurement of the initiator sweep
                // and open the initiator's listening window.
                const SswFeedbackField fb = responder.firmware().end_peer_sweep();
                initiator.firmware().begin_peer_sweep();
                return fb;
              },
          .initiator_select =
              [&initiator] { return initiator.firmware().end_peer_sweep(); },
      });
  responder.firmware().begin_peer_sweep();
  return session.run();
}

double LinkSimulator::true_snr_with_weights(const Node& tx, const WeightVector& weights,
                                            const Node& rx, int rx_sector) const {
  double total_mw = 0.0;
  for (const Ray& ray : env_->rays(tx.pose().position, rx.pose().position)) {
    const Direction dep_dev = tx.pose().orientation.to_device_frame(ray.departure_world);
    const Direction arr_dev = rx.pose().orientation.to_device_frame(ray.arrival_world);
    const double rx_dbm = radio_.tx_power_dbm +
                          tx.front_end().gain_with_weights(weights, dep_dev) +
                          rx.front_end().gain_dbi(rx_sector, arr_dev) + ray.gain_db;
    total_mw += dbm_to_mw(rx_dbm);
  }
  return mw_to_dbm(total_mw) - radio_.noise_floor_dbm();
}

SweepMeasurement LinkSimulator::receive_sector_sweep(Node& tx, Node& rx,
                                                     std::span<const int> rx_sectors) {
  SweepMeasurement out;
  const int tx_sector = tx.firmware().own_tx_sector();
  for (int rx_sector : rx_sectors) {
    const double snr = true_snr_db(tx, tx_sector, rx, rx_sector);
    if (auto reading = measurement_.measure(rx_sector, snr)) {
      out.readings.push_back(*reading);
    }
  }
  return out;
}

RefinementResult LinkSimulator::refine_tx_beam(Node& tx, Node& rx,
                                               const Direction& around,
                                               const RefinementConfig& config) {
  const auto candidates =
      make_refinement_candidates(tx.front_end().geometry(), around, config);
  return refine_beam(candidates, [this, &tx, &rx](const RefinementCandidate& c)
                         -> std::optional<double> {
    const double snr =
        true_snr_with_weights(tx, c.weights, rx, kRxQuasiOmniSectorId);
    const auto reading = measurement_.measure(0, snr);
    if (!reading) return std::nullopt;
    return reading->snr_db;
  });
}

int LinkSimulator::transmit_beacons(Node& tx, MonitorCapture* monitor) {
  int transmitted = 0;
  int slot_index = 0;
  for (const BurstSlot& slot : beacon_burst_schedule()) {
    ++slot_index;
    if (!slot.sector_id) continue;
    ++transmitted;
    if (monitor != nullptr) {
      monitor->capture(Frame{
          .type = FrameType::kBeacon,
          .source_node = tx.id(),
          .tx_time_us = timing_.ssw_frame_us * (slot_index - 1),
          .ssw = SswField{.cdown = slot.cdown,
                          .sector_id = *slot.sector_id,
                          .is_initiator = true},
      });
    }
  }
  return transmitted;
}

}  // namespace talon
