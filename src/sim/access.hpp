// IEEE 802.11ad initial access: BTI + A-BFT (Sec. 4.1 background).
//
// "As Access points (APs) do not know the best sectors to advertise their
// existence to potential clients, they periodically transmit beacon frames
// successively over multiple sectors" -- the Beacon Transmission Interval
// (BTI), using the Table-1 beacon schedule. Stations listen quasi-omni,
// pick the strongest beacon (learning the AP's TX sector toward them) and
// then contend in the Association BeamForming Training (A-BFT): a slotted
// window where each station performs its responder sector sweep toward the
// AP. Two stations in the same slot collide and retry in the next beacon
// interval. Beacons repeat every 102.4 ms, so the slot contention directly
// determines association delay.
#pragma once

#include <map>
#include <optional>
#include <vector>

#include "src/sim/linksim.hpp"

namespace talon {

struct InitialAccessConfig {
  /// A-BFT slots per beacon interval (standard default: 8).
  int a_bft_slots{8};
  /// Give up after this many beacon intervals without association.
  int max_beacon_intervals{50};
};

/// Per-station outcome of the access procedure.
struct AssociationOutcome {
  bool associated{false};
  /// Beacon intervals consumed until association (1 = first interval).
  int beacon_intervals{0};
  /// A-BFT slot collisions suffered along the way.
  int collisions{0};
  /// The AP's TX sector toward this station (learned from beacons).
  std::optional<int> ap_tx_sector;
  /// The station's TX sector toward the AP (from the A-BFT feedback).
  std::optional<int> sta_tx_sector;
  /// Wall-clock time to association [ms] (beacon interval granularity).
  double time_ms{0.0};
};

/// Runs BTI + A-BFT for one AP and a set of stations over the simulated
/// channel. Stations are identified by their index in `stations`.
class InitialAccessSimulator {
 public:
  InitialAccessSimulator(LinkSimulator& link, Node& ap,
                         std::vector<Node*> stations,
                         const InitialAccessConfig& config, Rng rng);

  /// Run until every station associated or gave up.
  std::vector<AssociationOutcome> run();

 private:
  /// One BTI: beacon burst; returns per-station best AP sector (stations
  /// that decode no beacon at all get nullopt and skip this A-BFT).
  std::vector<std::optional<int>> beacon_interval();

  /// One station's A-BFT responder sweep; returns its TX sector on success.
  std::optional<int> a_bft_training(Node& station);

  LinkSimulator* link_;
  Node* ap_;
  std::vector<Node*> stations_;
  InitialAccessConfig config_;
  Rng rng_;
};

}  // namespace talon
