// Experiment runners for the paper's evaluation (Sec. 6).
//
// Mirrors the paper's methodology: a *recording pass* collects full
// 34-sector sweeps at every rotation-head pose ("we make the two devices
// perform sector sweeps ... and record the signal strength as SNR and RSSI
// value for each sweep and sector"), and *offline analyses* then replay
// those recordings with a variable number of random probing sectors
// ("we only consider a variable number of random measurements in each
// sweep") to produce Figs. 7, 8 and 9. The throughput experiment (Fig. 11)
// runs live because it needs the true link SNR of whichever sector each
// algorithm selects -- and it drives the firmware override end-to-end.
//
// Determinism contract: every randomized trial draws from a counter-based
// substream seeded by substream_seed(seed, <stream tag>, <cell coords>)
// (common/rng.hpp), never from a shared sequential Rng. A trial's draws
// therefore depend only on its coordinates -- (pose, sweep) for recording,
// (probe count, pose) for the replay analyses, pose for throughput -- so
// results are bit-identical for any thread count, including 1, and for any
// iteration order.
#pragma once

#include <functional>
#include <vector>

#include "src/common/stats.hpp"
#include "src/core/css.hpp"
#include "src/core/selector.hpp"
#include "src/core/subset_policy.hpp"
#include "src/phy/throughput.hpp"
#include "src/sim/scenario.hpp"

namespace talon {

/// Execution knobs of the offline replay engine. Neither knob changes any
/// result: threads only distribute independent trial cells, and the batched
/// Eq. 5 kernel is bit-for-bit equal to the scalar path.
struct ReplayOptions {
  /// Worker threads; <= 0 means default_thread_count() (the --threads /
  /// TALON_THREADS override when set, hardware concurrency otherwise).
  int threads{0};
  /// Evaluate each cell's sweeps through the batched kernel
  /// (combined_surface_batch); false forces the scalar per-sweep path.
  bool batch{true};
};

/// One recorded full sweep at one rotation-head pose.
struct SweepRecord {
  int pose_index{0};
  Direction physical;  ///< nominal peer direction (ground truth)
  SweepMeasurement measurement;
};

struct RecordingConfig {
  std::vector<double> head_azimuths_deg;
  std::vector<double> head_tilts_deg{0.0};
  std::size_t sweeps_per_pose{10};
  std::uint64_t seed{1};
};

/// Data-collection pass: full sweeps DUT -> peer at every pose. Each
/// (pose, sweep) trial runs on its own substream-seeded link, so a record
/// depends only on its coordinates: recording fewer sweeps per pose, or a
/// prefix of the poses, reproduces the shared records bit for bit.
std::vector<SweepRecord> record_sweeps(Scenario& scenario,
                                       const RecordingConfig& config);

// --- Fig. 7: angular estimation error ------------------------------------

struct EstimationErrorRow {
  std::size_t probes{0};
  BoxStats azimuth_error;
  BoxStats elevation_error;
  std::size_t samples{0};
};

/// `selector` must provide direction estimates (SectorSelector's optional
/// capability); sweeps where it returns none are skipped. One probe subset
/// is drawn per (probe count, pose) cell and replayed against all of that
/// pose's sweeps -- the cells are independent and run on the parallel
/// executor.
std::vector<EstimationErrorRow> estimation_error_analysis(
    std::span<const SweepRecord> records, SectorSelector& selector,
    std::span<const std::size_t> probe_counts, const ProbeSubsetPolicy& policy,
    std::uint64_t seed, const ReplayOptions& options = {});

// --- Figs. 8 and 9: selection stability and SNR loss ----------------------

struct SelectionQualityRow {
  std::size_t probes{0};
  double css_stability{0.0};
  double ssw_stability{0.0};  ///< constant across probe counts (full sweep)
  double css_snr_loss_db{0.0};
  double ssw_snr_loss_db{0.0};
};

/// `selector` plays the compressive role against the built-in SSW
/// (full-sweep argmax) baseline. Cells are (probe count, pose) pairs, each
/// with its own substream, subset and forked selector; sweeps within a cell
/// replay in recording order (stability and SNR loss are sequential
/// quantities).
std::vector<SelectionQualityRow> selection_quality_analysis(
    std::span<const SweepRecord> records, SectorSelector& selector,
    std::span<const std::size_t> probe_counts, const ProbeSubsetPolicy& policy,
    std::uint64_t seed, const ReplayOptions& options = {});

// --- Fig. 11: application throughput --------------------------------------

struct ThroughputConfig {
  std::vector<double> head_azimuths_deg{-45.0, 0.0, 45.0};
  std::size_t probes{14};
  std::size_t sweeps_per_pose{40};
  /// When true, time spent training is credited back as data airtime
  /// (the Sec. 6.4 "future work" term; the paper's comparison uses false).
  bool account_training_time{false};
  std::uint64_t seed{1};
};

struct ThroughputPoint {
  double head_azimuth_deg{0.0};
  double css_mbps{0.0};
  double ssw_mbps{0.0};
};

/// Builds one fresh Scenario per call. Each pose of the Fig. 11 sweep gets
/// its own scenario instance (head pose, firmware state and link are all
/// mutable), which is what lets poses run in parallel.
using ScenarioFactory = std::function<Scenario()>;

/// Live run: CSS selections are installed into the peer-facing feedback via
/// the firmware's WMI sector override (the Sec. 3.4 mechanism), the SSW
/// baseline uses the stock argmax feedback. Poses are independent cells on
/// the parallel executor, each with a substream-seeded link and subset
/// stream.
std::vector<ThroughputPoint> throughput_analysis(const ScenarioFactory& make_scenario,
                                                 SectorSelector& selector,
                                                 const ThroughputModel& model,
                                                 const ThroughputConfig& config,
                                                 const ReplayOptions& options = {});

}  // namespace talon
