#include "src/sim/node.hpp"

namespace talon {

Node::Node(const NodeConfig& config)
    : id_(config.id),
      pose_(config.pose),
      front_end_(make_talon_front_end(config.device_seed)),
      firmware_(config.firmware) {}

}  // namespace talon
