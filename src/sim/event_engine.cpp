#include "src/sim/event_engine.hpp"

#include <algorithm>
#include <utility>

#include "src/common/error.hpp"
#include "src/common/parallel.hpp"

namespace talon {

EventEngine::EventEngine(EventEngineConfig config) : config_(config) {}

EntityId EventEngine::add_entity(std::string name) {
  TALON_EXPECTS(!running_);
  entity_names_.push_back(std::move(name));
  return static_cast<EntityId>(entity_names_.size() - 1);
}

const std::string& EventEngine::entity_name(EntityId entity) const {
  TALON_EXPECTS(entity < entity_names_.size());
  return entity_names_[entity];
}

void EventEngine::validate_spec(const EventSpec& spec, bool from_handler) const {
  TALON_EXPECTS(spec.entity < entity_names_.size());
  if (from_handler) {
    // Strictly after the executing batch, or the event could never be
    // merged into the canonical order (its batch is already draining).
    TALON_EXPECTS(spec.time_s > now_s_ ||
                  (spec.time_s == now_s_ && spec.priority > current_priority_));
  }
}

void EventEngine::schedule(const EventSpec& spec, EventFn fn) {
  TALON_EXPECTS(!running_);
  validate_spec(spec, /*from_handler=*/false);
  queue_.push(spec.time_s, spec.priority, spec.entity,
              Ev{std::move(fn), spec.commuting});
}

void EventContext::schedule(const EventSpec& spec, EventFn fn) {
  engine_->validate_spec(spec, /*from_handler=*/true);
  deferred_.push_back(Deferred{spec, std::move(fn)});
}

std::size_t EventEngine::run(double until_s) {
  TALON_EXPECTS(!running_);
  running_ = true;
  std::size_t executed = 0;

  while (!queue_.empty() && queue_.top_key().time_s <= until_s) {
    stats_.peak_queue = std::max(stats_.peak_queue, queue_.size());
    auto batch = queue_.pop_batch();
    now_s_ = batch.front().key.time_s;
    current_priority_ = batch.front().key.priority;

    // Group the batch by entity; pop_batch already sorted it by
    // (entity, seq), so groups are contiguous runs and one entity's
    // events stay in insertion order.
    std::vector<std::pair<std::size_t, std::size_t>> groups;
    for (std::size_t begin = 0; begin < batch.size();) {
      std::size_t end = begin + 1;
      while (end < batch.size() &&
             batch[end].key.entity == batch[begin].key.entity) {
        ++end;
      }
      groups.emplace_back(begin, end);
      begin = end;
    }

    std::vector<EventContext> contexts;
    contexts.reserve(groups.size());
    for (const auto& [begin, end] : groups) {
      contexts.emplace_back(this, batch[begin].key.entity);
    }

    const bool all_commuting =
        std::all_of(batch.begin(), batch.end(),
                    [](const auto& entry) { return entry.payload.commuting; });
    const auto run_group = [&](std::size_t g) {
      for (std::size_t i = groups[g].first; i < groups[g].second; ++i) {
        batch[i].payload.fn(contexts[g]);
      }
    };
    if (all_commuting && groups.size() > 1) {
      // One entity's state per worker: provably commuting fan-out.
      ++stats_.parallel_batches;
      parallel_for(groups.size(), run_group,
                   ParallelOptions{.threads = config_.threads});
    } else {
      for (std::size_t g = 0; g < groups.size(); ++g) run_group(g);
    }

    // Merge the buffered follow-ups in batch order: the sequence numbers
    // they receive depend only on the canonical order, never on which
    // worker ran which group first.
    for (EventContext& context : contexts) {
      for (EventContext::Deferred& deferred : context.deferred_) {
        queue_.push(deferred.spec.time_s, deferred.spec.priority,
                    deferred.spec.entity,
                    Ev{std::move(deferred.fn), deferred.spec.commuting});
      }
    }

    executed += batch.size();
    ++stats_.batches;
    stats_.executed += batch.size();
  }

  running_ = false;
  current_priority_ = std::numeric_limits<int>::min();
  return executed;
}

}  // namespace talon
