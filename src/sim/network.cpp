#include "src/sim/network.hpp"

#include <algorithm>
#include <cmath>

#include "src/antenna/codebook.hpp"
#include "src/common/error.hpp"
#include "src/common/rng.hpp"
#include "src/mac/timing.hpp"
#include "src/sim/contention.hpp"
#include "src/sim/event_engine.hpp"

namespace talon {

namespace {

// Substream stream tags of the network simulator, from the
// uniqueness-checked registry in common/rng.hpp. Every coordinate tuple
// includes the link id, which is what makes per-link randomness
// independent of K, of iteration order, and of the thread count.
constexpr std::uint64_t kDeviceStream = streams::kNetworkDevice;
constexpr std::uint64_t kChannelStream = streams::kNetworkChannel;
constexpr std::uint64_t kSessionStream = streams::kNetworkSession;
constexpr std::uint64_t kPhaseStream = streams::kNetworkPhase;

// Priority phases of one training round on the event engine: the
// commuting per-link physical phase first, then the serial batched
// selection phase on the daemon entity (one
// CssDaemon::complete_prepared walk for all K parked sweeps), then the
// serial channel arbitration that consumes the round's outputs.
// Priorities are barriers, so every sweep is parked before the batch
// runs and every selection is installed before contention accounts the
// round.
constexpr int kPhysicalPhase = 0;
constexpr int kSelectionPhase = 1;
constexpr int kContentionPhase = 2;

std::uint64_t link_salt(const NetworkConfig& config, std::size_t link) {
  return link < config.link_seed_salts.size() ? config.link_seed_salts[link] : 0;
}

}  // namespace

NetworkSimulator::NetworkSimulator(NetworkConfig config,
                                   const Environment& environment,
                                   std::shared_ptr<const PatternAssets> assets)
    : config_(std::move(config)),
      environment_(&environment),
      daemon_(std::move(assets), config_.session) {
  TALON_EXPECTS(config_.links >= 1);
  TALON_EXPECTS(config_.rounds >= 1);
  TALON_EXPECTS(config_.trainings_per_second > 0.0);
  TALON_EXPECTS(config_.link_distance_m > 0.0);

  const double period_s = 1.0 / config_.trainings_per_second;
  // Pairs sit on a grid; the x pitch leaves pair_spacing_m of clearance
  // between one pair's STA and the next pair's AP.
  const int cols = static_cast<int>(
      std::ceil(std::sqrt(static_cast<double>(config_.links))));
  const double pitch_x = config_.link_distance_m + config_.pair_spacing_m;

  links_.reserve(static_cast<std::size_t>(config_.links));
  for (int l = 0; l < config_.links; ++l) {
    const double ap_x = (l % cols) * pitch_x;
    const double ap_y = (l / cols) * config_.pair_spacing_m;

    Link link;
    NodeConfig ap;
    ap.id = 2 * l + 1;
    ap.device_seed = substream_seed(config_.seed, kDeviceStream,
                                    static_cast<std::uint64_t>(l), 0);
    ap.pose = EndpointPose{
        .position = {ap_x, ap_y, 1.0},
        .orientation = DeviceOrientation(0.0, 0.0),  // facing its STA (+x)
    };
    link.initiator = std::make_unique<Node>(ap);

    NodeConfig sta;
    sta.id = 2 * l + 2;
    sta.device_seed = substream_seed(config_.seed, kDeviceStream,
                                     static_cast<std::uint64_t>(l), 1);
    sta.pose = EndpointPose{
        .position = {ap_x + config_.link_distance_m, ap_y, 1.0},
        .orientation = DeviceOrientation(180.0, 0.0),  // facing back at the AP
    };
    link.responder = std::make_unique<Node>(sta);

    link.driver = std::make_unique<Wil6210Driver>(link.responder->firmware());
    link.phase_s = Rng(substream_seed(config_.seed, kPhaseStream,
                                      static_cast<std::uint64_t>(l)))
                       .uniform(0.0, period_s);

    // The session loads the research patches into the responder firmware
    // (shared read-only images) and carries all of this link's mutable
    // selection state.
    daemon_.add_link(l, *link.driver,
                     Rng(substream_seed(config_.seed, kSessionStream,
                                        static_cast<std::uint64_t>(l),
                                        link_salt(config_, l))));
    links_.push_back(std::move(link));
  }
}

void NetworkSimulator::train_link(std::size_t l, std::size_t round,
                                  LinkRoundOutcome& out) {
  LinkSession& session = daemon_.session(static_cast<int>(l));
  const std::vector<int> subset = session.next_probe_subset();
  out.probes = subset.size();

  LinkSimulator link(*environment_, config_.radio, config_.measurement,
                     Rng(substream_seed(config_.seed, kChannelStream,
                                        static_cast<std::uint64_t>(l), round)));
  const MutualTrainingResult training =
      link.mutual_training(*links_[l].initiator, *links_[l].responder,
                           probing_burst_schedule(subset));
  out.training_success = training.success;

  // User space, phase 1: drain the responder's ring and park the sweep.
  // The selection itself -- and the override install that shapes the
  // next round's feedback -- happens in the serial kSelectionPhase
  // event, where the daemon batches all K links' argmaxes into one
  // cache-hot walk over the shared response matrix. Bit-identical to
  // the old per-link process_sweep() (the batched argmax is
  // bit-identical to the single one, and no cross-link state is read
  // between the phases).
  session.prepare_sweep();
}

NetworkRunResult NetworkSimulator::run(const ThroughputModel& throughput) {
  const TimingModel timing;
  const double period_s = 1.0 / config_.trainings_per_second;
  const std::size_t k = links_.size();

  NetworkRunResult result;
  result.rounds.resize(config_.rounds);
  for (NetworkRound& round : result.rounds) round.links.resize(k);

  // The compatibility facade over the discrete-event core: round r is one
  // engine timestamp r * period. The physical phase is K commuting
  // per-link events (each worker touches only its own link's nodes,
  // firmware and session -- the same ownership rule the old parallel_for
  // obeyed), and the contention phase is one event of the channel-arbiter
  // entity, which serializes the round's trainings with the exact
  // arithmetic of the round-based loop. Selections, deferrals and airtime
  // are bit-identical to the pre-engine simulator at any thread count.
  EventEngine engine(EventEngineConfig{.threads = config_.threads});
  std::vector<EntityId> link_entities;
  link_entities.reserve(k);
  for (std::size_t l = 0; l < k; ++l) {
    link_entities.push_back(engine.add_entity("link-" + std::to_string(l)));
  }
  const EntityId arbiter_entity = engine.add_entity("channel-arbiter");
  const EntityId daemon_entity = engine.add_entity("css-daemon");
  ChannelArbiter arbiter;
  // Reused across rounds by the selection phase (serial, so no races).
  std::map<int, std::optional<CssResult>> round_selections;

  for (std::size_t r = 0; r < config_.rounds; ++r) {
    const double round_start_s = static_cast<double>(r) * period_s;
    NetworkRound& round = result.rounds[r];
    for (std::size_t l = 0; l < k; ++l) {
      engine.schedule(
          EventSpec{.time_s = round_start_s,
                    .entity = link_entities[l],
                    .priority = kPhysicalPhase,
                    .commuting = true},
          [this, l, r, &round](EventContext&) { train_link(l, r, round.links[l]); });
    }
    engine.schedule(
        EventSpec{.time_s = round_start_s,
                  .entity = daemon_entity,
                  .priority = kSelectionPhase,
                  .commuting = false},
        [this, r, k, &round, &round_selections](EventContext&) {
          // Selection phase: one batched branch-and-bound walk computes
          // every parked sweep's argmax (per-link completion installs
          // the overrides in link order). The true-SNR probe of each
          // selection rebuilds the link's channel view from the same
          // substream the physical phase used -- true_snr_db draws no
          // randomness, so the outcome is bit-identical to evaluating
          // it inside train_link.
          round_selections.clear();
          daemon_.complete_prepared(&round_selections);
          for (std::size_t l = 0; l < k; ++l) {
            const auto it = round_selections.find(static_cast<int>(l));
            if (it == round_selections.end() || !it->second.has_value()) continue;
            LinkRoundOutcome& out = round.links[l];
            out.selected = true;
            out.sector_id = it->second->sector_id;
            LinkSimulator link(
                *environment_, config_.radio, config_.measurement,
                Rng(substream_seed(config_.seed, kChannelStream,
                                   static_cast<std::uint64_t>(l), r)));
            out.snr_db =
                link.true_snr_db(*links_[l].initiator, out.sector_id,
                                 *links_[l].responder, kRxQuasiOmniSectorId);
          }
        });
    engine.schedule(
        EventSpec{.time_s = round_start_s,
                  .entity = arbiter_entity,
                  .priority = kContentionPhase,
                  .commuting = false},
        [this, r, k, period_s, &timing, &round, &arbiter,
         &result](EventContext&) {
          // Channel phase: serialize this round's K trainings on the one
          // shared channel (quasi-omni reception means a sweep occupies
          // it for everyone). The arbiter entity carries the channel-free
          // time across rounds, so a saturated channel staggers later
          // rounds.
          for (std::size_t l = 0; l < k; ++l) {
            const double desired_s =
                static_cast<double>(r) * period_s + links_[l].phase_s;
            const double duration_s =
                timing.mutual_training_time_ms(
                    static_cast<int>(round.links[l].probes)) /
                1000.0;
            arbiter.submit(static_cast<std::uint64_t>(l), desired_s, duration_s);
          }
          const ChannelArbiter::Outcome outcome = arbiter.arbitrate();
          for (const ChannelArbiter::Grant& grant : outcome.grants) {
            LinkRoundOutcome& out = round.links[grant.key];
            out.desired_start_s = grant.desired_s;
            out.actual_start_s = grant.actual_s;
          }
          round.busy_time_s = outcome.busy_time_s;
          round.deferred = outcome.deferred;
          round.worst_defer_ms = outcome.worst_defer_ms;

          result.total_trainings += static_cast<int>(k);
          result.deferred_trainings += outcome.deferred;
          result.worst_defer_ms =
              std::max(result.worst_defer_ms, outcome.worst_defer_ms);
        });
  }
  engine.run();

  // Airtime accounting over the simulated horizon (contention model
  // convention: trainings pushed past it still count up to the horizon).
  const double horizon_s = static_cast<double>(config_.rounds) * period_s;
  double busy_total_s = 0.0;
  for (const NetworkRound& round : result.rounds) busy_total_s += round.busy_time_s;
  result.training_airtime_share = std::min(busy_total_s, horizon_s) / horizon_s;

  double snr_sum = 0.0;
  double tput_sum = 0.0;
  std::size_t selections = 0;
  for (const NetworkRound& round : result.rounds) {
    for (const LinkRoundOutcome& out : round.links) {
      if (!out.selected) continue;
      snr_sum += out.snr_db;
      tput_sum += throughput.app_throughput_mbps(out.snr_db);
      ++selections;
    }
  }
  // A run can end with no valid selection at all (e.g. a fault plan that
  // drops every probe); the means stay at their zero defaults instead of
  // dividing by zero.
  if (selections > 0) {
    result.mean_selected_snr_db = snr_sum / static_cast<double>(selections);
    result.goodput_per_link_mbps = (tput_sum / static_cast<double>(selections)) *
                                   (1.0 - result.training_airtime_share) /
                                   static_cast<double>(k);
  }
  result.fault_totals = daemon_.total_fault_stats();
  result.degradation_totals = daemon_.total_degradation_stats();
  result.lifecycle_totals = daemon_.total_lifecycle_stats();
  return result;
}

}  // namespace talon
