#include "src/sim/network.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "src/antenna/codebook.hpp"
#include "src/common/error.hpp"
#include "src/common/parallel.hpp"
#include "src/common/rng.hpp"
#include "src/mac/timing.hpp"
#include "src/sim/contention.hpp"

namespace talon {

namespace {

// Substream stream tags of the network simulator. sim/experiment.cpp owns
// tags 1-4 (recording/error/quality/throughput); these continue the family
// so no two runners ever share a substream. Every coordinate tuple
// includes the link id, which is what makes per-link randomness
// independent of K, of iteration order, and of the thread count.
constexpr std::uint64_t kDeviceStream = 5;   ///< (link, side) device seeds
constexpr std::uint64_t kChannelStream = 6;  ///< (link, round) channel noise
constexpr std::uint64_t kSessionStream = 7;  ///< (link, salt) probe subsets
constexpr std::uint64_t kPhaseStream = 8;    ///< (link) schedule jitter

std::uint64_t link_salt(const NetworkConfig& config, std::size_t link) {
  return link < config.link_seed_salts.size() ? config.link_seed_salts[link] : 0;
}

}  // namespace

NetworkSimulator::NetworkSimulator(NetworkConfig config,
                                   const Environment& environment,
                                   std::shared_ptr<const PatternAssets> assets)
    : config_(std::move(config)),
      environment_(&environment),
      daemon_(std::move(assets), config_.session) {
  TALON_EXPECTS(config_.links >= 1);
  TALON_EXPECTS(config_.rounds >= 1);
  TALON_EXPECTS(config_.trainings_per_second > 0.0);
  TALON_EXPECTS(config_.link_distance_m > 0.0);

  const double period_s = 1.0 / config_.trainings_per_second;
  // Pairs sit on a grid; the x pitch leaves pair_spacing_m of clearance
  // between one pair's STA and the next pair's AP.
  const int cols = static_cast<int>(
      std::ceil(std::sqrt(static_cast<double>(config_.links))));
  const double pitch_x = config_.link_distance_m + config_.pair_spacing_m;

  links_.reserve(static_cast<std::size_t>(config_.links));
  for (int l = 0; l < config_.links; ++l) {
    const double ap_x = (l % cols) * pitch_x;
    const double ap_y = (l / cols) * config_.pair_spacing_m;

    Link link;
    NodeConfig ap;
    ap.id = 2 * l + 1;
    ap.device_seed = substream_seed(config_.seed, kDeviceStream,
                                    static_cast<std::uint64_t>(l), 0);
    ap.pose = EndpointPose{
        .position = {ap_x, ap_y, 1.0},
        .orientation = DeviceOrientation(0.0, 0.0),  // facing its STA (+x)
    };
    link.initiator = std::make_unique<Node>(ap);

    NodeConfig sta;
    sta.id = 2 * l + 2;
    sta.device_seed = substream_seed(config_.seed, kDeviceStream,
                                     static_cast<std::uint64_t>(l), 1);
    sta.pose = EndpointPose{
        .position = {ap_x + config_.link_distance_m, ap_y, 1.0},
        .orientation = DeviceOrientation(180.0, 0.0),  // facing back at the AP
    };
    link.responder = std::make_unique<Node>(sta);

    link.driver = std::make_unique<Wil6210Driver>(link.responder->firmware());
    link.phase_s = Rng(substream_seed(config_.seed, kPhaseStream,
                                      static_cast<std::uint64_t>(l)))
                       .uniform(0.0, period_s);

    // The session loads the research patches into the responder firmware
    // (shared read-only images) and carries all of this link's mutable
    // selection state.
    daemon_.add_link(l, *link.driver,
                     Rng(substream_seed(config_.seed, kSessionStream,
                                        static_cast<std::uint64_t>(l),
                                        link_salt(config_, l))));
    links_.push_back(std::move(link));
  }
}

NetworkRunResult NetworkSimulator::run(const ThroughputModel& throughput) {
  const TimingModel timing;
  const double period_s = 1.0 / config_.trainings_per_second;
  const std::size_t k = links_.size();

  NetworkRunResult result;
  result.rounds.reserve(config_.rounds);
  double channel_free_s = 0.0;

  for (std::size_t r = 0; r < config_.rounds; ++r) {
    NetworkRound round;
    round.links.resize(k);

    // Physical phase: every pair trains once. One link per index; each
    // worker touches only its own link's nodes, firmware and session, so
    // the fan-out is bit-identical at any thread count.
    parallel_for(
        k,
        [&](std::size_t l) {
          LinkRoundOutcome& out = round.links[l];
          LinkSession& session = daemon_.session(static_cast<int>(l));
          const std::vector<int> subset = session.next_probe_subset();
          out.probes = subset.size();

          LinkSimulator link(*environment_, config_.radio, config_.measurement,
                             Rng(substream_seed(config_.seed, kChannelStream,
                                                static_cast<std::uint64_t>(l), r)));
          const MutualTrainingResult training =
              link.mutual_training(*links_[l].initiator, *links_[l].responder,
                                   probing_burst_schedule(subset));
          out.training_success = training.success;

          // User space: drain the responder's ring, select, install the
          // override that shapes the next round's feedback.
          const std::optional<CssResult> selection = session.process_sweep();
          if (selection) {
            out.selected = true;
            out.sector_id = selection->sector_id;
            out.snr_db = link.true_snr_db(*links_[l].initiator, selection->sector_id,
                                          *links_[l].responder, kRxQuasiOmniSectorId);
          }
        },
        ParallelOptions{.threads = config_.threads});

    // Channel phase: serialize this round's K trainings on the one shared
    // channel (quasi-omni reception means a sweep occupies it for
    // everyone). The channel-free time carries across rounds, so a
    // saturated channel staggers later rounds.
    std::vector<std::size_t> order(k);
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::vector<double> desired(k);
    for (std::size_t l = 0; l < k; ++l) {
      desired[l] = static_cast<double>(r) * period_s + links_[l].phase_s;
    }
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return desired[a] != desired[b] ? desired[a] < desired[b] : a < b;
    });
    std::vector<double> requests(k);
    std::vector<double> durations(k);
    for (std::size_t i = 0; i < k; ++i) {
      requests[i] = desired[order[i]];
      durations[i] = timing.mutual_training_time_ms(
                         static_cast<int>(round.links[order[i]].probes)) /
                     1000.0;
    }
    const TrainingSerialization serialized =
        serialize_trainings(requests, durations, channel_free_s);
    channel_free_s = serialized.channel_free_s;
    for (std::size_t i = 0; i < k; ++i) {
      round.links[order[i]].desired_start_s = requests[i];
      round.links[order[i]].actual_start_s = serialized.start_times_s[i];
    }
    round.busy_time_s = serialized.busy_time_s;
    round.deferred = serialized.deferred;
    round.worst_defer_ms = serialized.worst_defer_ms;

    result.total_trainings += static_cast<int>(k);
    result.deferred_trainings += serialized.deferred;
    result.worst_defer_ms = std::max(result.worst_defer_ms, serialized.worst_defer_ms);
    result.rounds.push_back(std::move(round));
  }

  // Airtime accounting over the simulated horizon (contention model
  // convention: trainings pushed past it still count up to the horizon).
  const double horizon_s = static_cast<double>(config_.rounds) * period_s;
  double busy_total_s = 0.0;
  for (const NetworkRound& round : result.rounds) busy_total_s += round.busy_time_s;
  result.training_airtime_share = std::min(busy_total_s, horizon_s) / horizon_s;

  double snr_sum = 0.0;
  double tput_sum = 0.0;
  std::size_t selections = 0;
  for (const NetworkRound& round : result.rounds) {
    for (const LinkRoundOutcome& out : round.links) {
      if (!out.selected) continue;
      snr_sum += out.snr_db;
      tput_sum += throughput.app_throughput_mbps(out.snr_db);
      ++selections;
    }
  }
  if (selections > 0) {
    result.mean_selected_snr_db = snr_sum / static_cast<double>(selections);
    result.goodput_per_link_mbps = (tput_sum / static_cast<double>(selections)) *
                                   (1.0 - result.training_airtime_share) /
                                   static_cast<double>(k);
  }
  result.fault_totals = daemon_.total_fault_stats();
  result.degradation_totals = daemon_.total_degradation_stats();
  return result;
}

}  // namespace talon
