// Canned experimental setups matching the paper's venues (Sec. 4.2 / 6.1).
//
// All scenarios place the device under test (DUT) at the origin on a
// rotation head and the fixed peer on the +x axis facing back:
//   - anechoic: 3 m, no reflections (pattern campaign),
//   - lab: 3 m, weak reflectors,
//   - conference room: 6 m, stronger multipath.
// The rotation-head convention: head azimuth alpha and upward-mapped tilt
// tau put the peer at device-frame direction (-alpha, +tau) -- these
// nominal coordinates are also what the experiments treat as the physical
// ground truth, like the paper does.
#pragma once

#include <memory>

#include "src/channel/environment.hpp"
#include "src/sim/linksim.hpp"
#include "src/sim/node.hpp"

namespace talon {

struct Scenario {
  std::string name;
  std::unique_ptr<Environment> environment;
  std::unique_ptr<Node> dut;   ///< device under test, on the rotation head
  std::unique_ptr<Node> peer;  ///< fixed node
  RadioConfig radio;
  MeasurementModelConfig measurement;
  double distance_m{3.0};

  /// Point the DUT's rotation head: azimuth alpha, tilt tau (both deg).
  /// Internally the device tilts by -tau so the peer appears at +tau
  /// elevation in the device frame.
  void set_head(double azimuth_deg, double tilt_deg);

  /// The device-frame direction the peer nominally sits at for the current
  /// head position (the experiments' ground truth).
  Direction nominal_peer_direction() const;

  LinkSimulator make_link(Rng rng) const {
    return LinkSimulator(*environment, radio, measurement, rng);
  }
};

Scenario make_anechoic_scenario(std::uint64_t seed);
Scenario make_lab_scenario(std::uint64_t seed);
Scenario make_conference_scenario(std::uint64_t seed);

}  // namespace talon
