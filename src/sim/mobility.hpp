// Mobility & blockage scenario engine: the dynamic-world campaign the
// static rig cannot express. The paper trains at fixed rotation-head
// poses; InferBeam-style evaluations ask the opposite question -- when
// the user WALKS, ROTATES the device, steps into the LOS, or the room
// itself changes, how fast does each selection strategy re-align the
// beam, and what fraction of the time is the link in outage?
//
// The engine runs on the deterministic discrete-event core
// (sim/event_engine). World dynamics and selection arms are separate
// entities in separate priority phases of each training slot:
//
//   priority 0 (world):  walker    -- evaluates the waypoint trajectory
//                                     and device rotation at the event
//                                     timestamp and publishes the STA pose
//                        blockage  -- self-scheduling two-state process:
//                                     exponential clear->blocked->clear
//                                     flips of the LOS torso attenuation
//                        churn     -- self-scheduling reflector toggles
//                                     (furniture moved, a door opened)
//   priority 1 (arms):   one commuting entity per selection strategy
//                        (SswArgmax / Css / TrackingCss), each owning its
//                        OWN nodes, environment copy, driver and daemon.
//                        An arm round copies the published world into its
//                        environment, runs one training, and scores the
//                        installed beam against the instantaneous optimum.
//
// Randomness: the stochastic world entities draw one substream per event
// from the reserved streams:: event-entity range
// (streams::event_entity_tag), so enabling churn cannot perturb the
// blockage timeline and vice versa -- the stream-isolation tests pin
// this. Arms consume their own per-entity channel/daemon substreams.
// Every cross-arm interaction goes through the phase-0 world snapshot,
// so runs are bit-identical at any --threads.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "src/antenna/pattern.hpp"
#include "src/common/vec3.hpp"
#include "src/core/link_state.hpp"

namespace talon {

/// Sentinel reported by aggregates whose sample set is empty (e.g.
/// re-alignment latency when no outage ever occurred): quantile()/
/// box_stats() require non-empty input, so empty spans report this
/// instead of being aggregated.
inline constexpr double kNoRealignSentinel = -1.0;

/// Piecewise-linear waypoint loop walked at constant speed, plus a
/// triangle-wave device-rotation offset around the DUT-facing yaw.
struct WaypointWalkConfig {
  /// Visited in order, then back to the first (a loop). Defaults (set by
  /// MobilitySimulator when empty) stay inside the conference-room
  /// reflector box.
  std::vector<Vec3> waypoints{};
  double speed_mps{1.2};
  /// Device-rotation triangle wave: the STA yaw swings +-amplitude around
  /// facing-the-AP at this angular rate. 0 disables rotation.
  double rotation_deg_per_s{30.0};
  double rotation_amplitude_deg{45.0};
};

/// Transient two-state body blockage: clear -> blocked onsets arrive at
/// `rate_hz` (exponential gaps) and each blockage clears after an
/// exponential dwell of mean `mean_duration_s`.
struct BlockageProcessConfig {
  double rate_hz{0.0};
  double mean_duration_s{0.6};
  /// LOS attenuation while blocked (a torso costs 20-30 dB at 60 GHz).
  double attenuation_db{25.0};
};

/// Reflector churn: at `rate_hz` (exponential gaps) one uniformly chosen
/// reflector of the room toggles enabled <-> disabled.
struct ReflectorChurnConfig {
  double rate_hz{0.0};
};

struct MobilityConfig {
  double duration_s{6.0};
  /// One training round per arm every interval (20 Hz default -- the
  /// Talon's practical re-training cadence).
  double training_interval_s{0.05};
  /// Probe budget of the compressive arms (the SSW arm always sweeps all
  /// sectors once primed).
  std::size_t probes{14};
  std::uint64_t seed{1};
  /// Device seed of the fixed AP; must match the device the pattern
  /// table handed to MobilitySimulator was measured for.
  std::uint64_t dut_seed{42};
  /// Worker threads for the commuting arm fan-out; <= 0 uses the
  /// executor default.
  int threads{0};
  WaypointWalkConfig walk{};
  BlockageProcessConfig blockage{};
  ReflectorChurnConfig churn{};
  /// A round whose installed beam loses more than this against the
  /// instantaneous optimum counts as outage and opens a re-alignment
  /// episode.
  double outage_loss_db{10.0};
  /// The episode closes (latency recorded) when the loss re-enters this
  /// bound.
  double realign_loss_db{3.0};
};

/// The three selection strategies raced through identical worlds.
enum class MobilityArm : std::uint8_t {
  kSswArgmax = 0,    ///< full 34-sector sweep + stock argmax
  kCss = 1,          ///< compressive selection, degradation enabled
  kTrackingCss = 2,  ///< CSS + path tracker (re-locks after blockage)
};
inline constexpr std::size_t kMobilityArmCount = 3;

const char* to_string(MobilityArm arm);

/// Per-arm campaign record (bit-comparable; the determinism tests assert
/// full equality at every thread count).
struct MobilityArmResult {
  MobilityArm arm{MobilityArm::kSswArgmax};
  std::uint64_t rounds{0};
  /// Rounds whose beam loss exceeded outage_loss_db.
  std::uint64_t outage_rounds{0};
  double outage_fraction{0.0};
  double mean_loss_db{0.0};
  double worst_loss_db{0.0};
  /// Closed re-alignment episodes (outage -> back within realign bound).
  std::uint64_t realign_episodes{0};
  /// Episodes still open when the horizon ended (never re-aligned).
  std::uint64_t unrecovered_episodes{0};
  /// Re-alignment latency quantiles [s]; kNoRealignSentinel when no
  /// episode ever closed.
  double median_realign_s{kNoRealignSentinel};
  double p90_realign_s{kNoRealignSentinel};
  double worst_realign_s{kNoRealignSentinel};
  /// The arm's daemon-side lifecycle record (unit: rounds).
  LifecycleStats lifecycle{};

  friend bool operator==(const MobilityArmResult&, const MobilityArmResult&) = default;
};

struct MobilityRunResult {
  /// Indexed by MobilityArm value.
  std::vector<MobilityArmResult> arms;
  double simulated_s{0.0};
  std::uint64_t events_executed{0};
  std::uint64_t parallel_batches{0};
  /// World-process activity (stream-isolation observables).
  std::uint64_t blockage_events{0};
  std::uint64_t reflector_toggles{0};

  friend bool operator==(const MobilityRunResult&, const MobilityRunResult&) = default;
};

class MobilitySimulator {
 public:
  /// `table` is the DUT's measured pattern table (the AP keeps the
  /// bench::kDutSeed device identity; the walking STA is its scenario
  /// peer).
  MobilitySimulator(MobilityConfig config, const PatternTable& table);

  MobilityRunResult run();

  /// The deterministic walker trajectory: STA position and yaw offset at
  /// time t (exposed for tests; this is exactly what the walker entity
  /// publishes at each event timestamp).
  Vec3 position_at(double t_s) const;
  double rotation_offset_deg_at(double t_s) const;

 private:
  MobilityConfig config_;
  const PatternTable* table_;
  /// Waypoint loop scratch: cumulative arc lengths of the closed loop.
  std::vector<double> cumulative_m_;
  double loop_length_m_{0.0};
};

}  // namespace talon
