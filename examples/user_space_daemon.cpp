// Example: the complete user-space stack, as it runs on a jailbroken
// router -- driver facade, CSS daemon, adaptive probing, and a mid-run
// blockage event.
//
//   [DUT sweeps] --air--> [peer firmware ring buffer]
//                             | Wil6210Driver::read_sweep_readings()
//                         [CssDaemon: Eq. 2-5 selection]
//                             | Wil6210Driver::force_sector()
//                         [feedback steers the DUT]
//
// Midway, a person steps into the line of sight (25 dB blockage): the
// daemon's next selections move to a reflected-path sector and the link
// survives at reduced SNR; when the person moves away, it returns.

#include <cstdio>

#include "src/driver/css_daemon.hpp"
#include "src/measure/campaign.hpp"
#include "src/sim/scenario.hpp"

int main() {
  using namespace talon;

  // Pattern table (quick chamber campaign for the DUT's device).
  Scenario chamber = make_anechoic_scenario(/*seed=*/42);
  CampaignConfig campaign;
  campaign.azimuth = make_axis(-90.0, 90.0, 3.6);
  campaign.elevation = make_axis(0.0, 32.4, 5.4);
  campaign.repetitions = 2;
  const PatternTable table = measure_sector_patterns(chamber, campaign).table;

  Scenario room = make_conference_scenario(/*seed=*/42);
  room.set_head(0.0, 0.0);
  auto* env = dynamic_cast<RayTracedEnvironment*>(room.environment.get());
  LinkSimulator link = room.make_link(Rng(61));

  // The daemon runs on the host of the *peer* (the node producing feedback).
  Wil6210Driver driver(room.peer->firmware());
  std::printf("firmware %s, loading research patches...\n",
              driver.firmware_version().c_str());
  CssDaemonConfig daemon_config;
  daemon_config.adaptive = true;
  CssDaemon daemon(driver, table, daemon_config, Rng(63));

  std::printf("\nround | probes | blockage | selected | est az | true SNR [dB]\n");
  std::printf("------+--------+----------+----------+--------+---------------\n");
  for (int round = 0; round < 24; ++round) {
    // A person blocks the LOS during rounds 8..15.
    const bool blocked = round >= 8 && round < 16;
    env->set_los_blockage_db(blocked ? 25.0 : 0.0);

    const auto subset = daemon.next_probe_subset();
    link.transmit_sweep(*room.dut, *room.peer, probing_burst_schedule(subset));
    const auto result = daemon.process_sweep();

    if (result) {
      const double snr = link.true_snr_db(*room.dut, result->sector_id, *room.peer,
                                          kRxQuasiOmniSectorId);
      std::printf("%5d |  %4zu  |   %s    |   %3d    | %6.1f | %8.2f\n", round,
                  subset.size(), blocked ? "yes" : " no", result->sector_id,
                  result->estimated_direction ? result->estimated_direction->azimuth_deg
                                              : -999.0,
                  snr);
    } else {
      std::printf("%5d |  %4zu  |   %s    |   (none decoded)\n", round,
                  subset.size(), blocked ? "yes" : " no");
    }
  }
  std::printf(
      "\nduring the blockage the selections move to a reflected-path sector\n"
      "(estimate off boresight, lower but usable SNR); after it clears they\n"
      "return to the direct beam. %zu rounds processed.\n",
      daemon.rounds());
  return 0;
}
