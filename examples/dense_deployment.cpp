// Example: why faster training matters at scale (the Sec. 7 discussion:
// "each sector sweep performed by a pair of nodes pollutes the whole
// mm-wave channel in all directions" -- quasi-omni reception plus swept
// transmit beams mean training airtime is effectively exclusive).
//
// This example sizes the training airtime budget of a dense room: N node
// pairs, each retraining at a given rate, under the stock sweep vs CSS
// with 14 probes, and translates the saved airtime into extra data
// capacity at the measured ~1.5 Gbps application rate.

#include <cstdio>
#include <initializer_list>

#include "src/mac/timing.hpp"
#include "src/phy/throughput.hpp"
#include "src/sim/contention.hpp"

int main() {
  using namespace talon;

  const TimingModel timing;
  const ThroughputModel throughput;
  const double ssw_ms = timing.mutual_training_time_ms(kFullSweepProbes);
  const double css_ms = timing.mutual_training_time_ms(14);

  std::printf("mutual training: SSW %.2f ms, CSS(14) %.2f ms (%.1fx)\n\n", ssw_ms,
              css_ms, timing.speedup_vs_full_sweep(14));

  std::printf("pairs | trainings/s | SSW airtime | CSS airtime | channel time freed\n");
  std::printf("      |  per pair   |  [%% of ch]  |  [%% of ch]  |   [ms per second]\n");
  std::printf("------+-------------+-------------+-------------+-------------------\n");
  for (int pairs : {1, 4, 10, 25, 50}) {
    for (double rate : {1.0, 10.0}) {
      const double ssw_share = pairs * rate * ssw_ms / 1000.0 * 100.0;
      const double css_share = pairs * rate * css_ms / 1000.0 * 100.0;
      std::printf("%5d |    %5.0f    |   %6.2f    |   %6.2f    |      %7.2f\n",
                  pairs, rate, ssw_share, css_share,
                  (ssw_share - css_share) * 10.0);
    }
  }

  // Event-driven check: serialize the trainings of co-channel pairs on one
  // shared channel (quasi-omni reception hears every sweep) and measure
  // the realized airtime share and per-pair goodput.
  std::printf("\nsimulated shared channel (20 s, 10 trainings/s per pair):\n");
  std::printf("pairs | algo | airtime | deferred | worst defer | goodput/pair\n");
  std::printf("------+------+---------+----------+-------------+-------------\n");
  for (int pairs : {10, 25, 50}) {
    for (int probes : {34, 14}) {
      ContentionConfig config;
      config.pairs = pairs;
      config.trainings_per_second = 10.0;
      config.probes_per_training = probes;
      config.simulated_seconds = 20.0;
      const ContentionResult r = simulate_channel_contention(config, throughput);
      std::printf("%5d | %s | %6.2f%% |  %6d  |  %7.2f ms | %8.1f Mbps\n", pairs,
                  probes == 34 ? "SSW " : "CSS ", r.training_airtime_share * 100.0,
                  r.deferred_trainings, r.worst_defer_ms, r.goodput_per_pair_mbps);
    }
  }

  // What the freed airtime buys at the measured application rate.
  const double app_gbps = throughput.app_throughput_mbps(21.0) / 1000.0;
  const int pairs = 25;
  const double rate = 10.0;  // mobile scenario: frequent retraining
  const double freed_s = pairs * rate * (ssw_ms - css_ms) / 1000.0;
  std::printf(
      "\nexample: %d pairs retraining %.0fx/s free %.1f ms of channel time per\n"
      "second -- %.2f Gbit of extra capacity per second at the measured\n"
      "%.2f Gbps application rate.\n",
      pairs, rate, freed_s * 1000.0, freed_s * app_gbps, app_gbps);
  std::printf(
      "\nthe same budget also bounds how often mobile users can be re-tracked:\n"
      "at 5%% training airtime, SSW supports %.0f trainings/s, CSS(14) %.0f.\n",
      0.05 / (ssw_ms / 1000.0), 0.05 / (css_ms / 1000.0));
  return 0;
}
