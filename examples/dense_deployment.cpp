// Example: why faster training matters at scale (the Sec. 7 discussion:
// "each sector sweep performed by a pair of nodes pollutes the whole
// mm-wave channel in all directions" -- quasi-omni reception plus swept
// transmit beams mean training airtime is effectively exclusive).
//
// Part 1 sizes the airtime budget in closed form. Part 2 then actually
// SIMULATES the dense room with the multi-link NetworkSimulator: K AP-STA
// pairs in one shared conference-room environment, every pair training
// each round with CSS probing (or a full-sweep-sized subset), all K
// sessions selecting through one shared PatternAssets instance, and the
// rounds' trainings serialized on the one shared channel. The airtime
// table of Part 1 re-emerges from simulated rounds instead of arithmetic.

#include <cstdio>
#include <initializer_list>

#include "src/core/css.hpp"
#include "src/mac/timing.hpp"
#include "src/measure/campaign.hpp"
#include "src/phy/throughput.hpp"
#include "src/sim/contention.hpp"
#include "src/sim/network.hpp"
#include "src/sim/scenario.hpp"

int main() {
  using namespace talon;

  const TimingModel timing;
  const ThroughputModel throughput;
  const double ssw_ms = timing.mutual_training_time_ms(kFullSweepProbes);
  const double css_ms = timing.mutual_training_time_ms(14);

  std::printf("mutual training: SSW %.2f ms, CSS(14) %.2f ms (%.1fx)\n\n", ssw_ms,
              css_ms, timing.speedup_vs_full_sweep(14));

  // --- Part 1: closed-form airtime budget -----------------------------------
  std::printf("closed-form airtime budget:\n");
  std::printf("pairs | trainings/s | SSW airtime | CSS airtime | channel time freed\n");
  std::printf("      |  per pair   |  [%% of ch]  |  [%% of ch]  |   [ms per second]\n");
  std::printf("------+-------------+-------------+-------------+-------------------\n");
  for (int pairs : {1, 4, 10, 25, 50}) {
    for (double rate : {1.0, 10.0}) {
      const double ssw_share = pairs * rate * ssw_ms / 1000.0 * 100.0;
      const double css_share = pairs * rate * css_ms / 1000.0 * 100.0;
      std::printf("%5d |    %5.0f    |   %6.2f    |   %6.2f    |      %7.2f\n",
                  pairs, rate, ssw_share, css_share,
                  (ssw_share - css_share) * 10.0);
    }
  }

  // --- Part 2: the same table from simulated rounds -------------------------
  // One pattern table (quick anechoic campaign) shared by every link
  // through the assets registry; each pair gets its own nodes, firmware
  // and LinkSession.
  std::printf("\nmeasuring the shared pattern table (quick campaign)...\n");
  Scenario chamber = make_anechoic_scenario(42);
  CampaignConfig campaign;
  campaign.azimuth = make_axis(-90.0, 90.0, 3.6);
  campaign.elevation = make_axis(0.0, 32.4, 5.4);
  campaign.repetitions = 2;
  const CssConfig defaults;
  const auto assets = PatternAssetsRegistry::global().get_or_create(
      measure_sector_patterns(chamber, campaign).table, defaults.search_grid,
      defaults.domain);
  const auto room = make_conference_room();
  std::printf("assets: %.2f MiB, shared by every session below\n",
              static_cast<double>(assets->shared_bytes()) / (1024.0 * 1024.0));

  std::printf("\nsimulated shared channel (10 rounds, 10 trainings/s per pair):\n");
  std::printf("pairs | algo    | airtime | deferred | worst defer | goodput/pair |"
              " mean SNR\n");
  std::printf("------+---------+---------+----------+-------------+--------------+"
              "---------\n");
  for (int pairs : {4, 10, 25}) {
    for (std::size_t probes : {std::size_t{34}, std::size_t{14}}) {
      NetworkConfig config;
      config.links = pairs;
      config.rounds = 10;
      config.trainings_per_second = 10.0;
      config.session.probes = probes;  // 34 ~ stock sweep airtime, 14 = CSS
      config.seed = 7;
      NetworkSimulator sim(config, *room, assets);
      const NetworkRunResult r = sim.run(throughput);
      std::printf("%5d | %s | %6.2f%% |  %6d  |  %7.2f ms | %7.1f Mbps | %5.1f dB\n",
                  pairs, probes == 34 ? "full-34" : "CSS-14 ",
                  r.training_airtime_share * 100.0, r.deferred_trainings,
                  r.worst_defer_ms, r.goodput_per_link_mbps,
                  r.mean_selected_snr_db);
    }
  }
  std::printf("\n(full-34 probes a 34-sector subset so its airtime matches the stock\n"
              " sweep's; the paper's CSS needs 14 probes for the same selections)\n");

  // What the freed airtime buys at the measured application rate.
  const double app_gbps = throughput.app_throughput_mbps(21.0) / 1000.0;
  const int pairs = 25;
  const double rate = 10.0;  // mobile scenario: frequent retraining
  const double freed_s = pairs * rate * (ssw_ms - css_ms) / 1000.0;
  std::printf(
      "\nexample: %d pairs retraining %.0fx/s free %.1f ms of channel time per\n"
      "second -- %.2f Gbit of extra capacity per second at the measured\n"
      "%.2f Gbps application rate.\n",
      pairs, rate, freed_s * 1000.0, freed_s * app_gbps, app_gbps);
  std::printf(
      "\nthe same budget also bounds how often mobile users can be re-tracked:\n"
      "at 5%% training airtime, SSW supports %.0f trainings/s, CSS(14) %.0f.\n",
      0.05 / (ssw_ms / 1000.0), 0.05 / (css_ms / 1000.0));
  return 0;
}
