// Example: tracking a moving peer with adaptive probe control
// (the Sec. 7 extension: "in static scenarios, few probes are sufficient
// ... whenever a node starts moving, the number of probes may increase to
// keep track of the movement").
//
// The rotation head plays back a motion profile: static, then a swing from
// -40 to +40 deg, then static again. Three strategies train once per step:
//   SSW            -- full 34-probe sweep every time,
//   CSS fixed 14   -- the paper's configuration,
//   CSS adaptive   -- probe count driven by AdaptiveProbeController.
// The report shows per-phase SNR loss and the training airtime each
// strategy consumed.

#include <cstdio>
#include <vector>

#include "src/core/adaptive.hpp"
#include "src/core/css.hpp"
#include "src/core/selector.hpp"
#include "src/core/ssw.hpp"
#include "src/core/subset_policy.hpp"
#include "src/mac/timing.hpp"
#include "src/measure/campaign.hpp"
#include "src/sim/scenario.hpp"

namespace {

using namespace talon;

struct StepResult {
  double loss_db{0.0};
  int probes{0};
};

struct Strategy {
  std::string name;
  double total_loss_db{0.0};
  double total_training_ms{0.0};
  int steps{0};

  void add(const StepResult& r, const TimingModel& timing) {
    total_loss_db += r.loss_db;
    total_training_ms += timing.mutual_training_time_ms(r.probes);
    ++steps;
  }
};

}  // namespace

int main() {
  using namespace talon;

  // Pattern table from the chamber (quick resolution).
  Scenario chamber = make_anechoic_scenario(/*seed=*/42);
  CampaignConfig campaign;
  campaign.azimuth = make_axis(-90.0, 90.0, 3.6);
  campaign.elevation = make_axis(0.0, 32.4, 5.4);
  campaign.repetitions = 2;
  const PatternTable table = measure_sector_patterns(chamber, campaign).table;
  const CompressiveSectorSelector css(table);
  CssSelector selector(css);

  // Motion profile: 80 static steps at -40, swing to +40 in 2-deg steps,
  // 20 static steps there.
  std::vector<double> profile;
  for (int i = 0; i < 80; ++i) profile.push_back(-40.0);
  for (double az = -40.0; az <= 40.0; az += 2.0) profile.push_back(az);
  for (int i = 0; i < 80; ++i) profile.push_back(40.0);

  Scenario lab = make_lab_scenario(/*seed=*/42);
  LinkSimulator link = lab.make_link(Rng(33));
  RandomSubsetPolicy policy;
  Rng rng(35);
  const TimingModel timing;

  Strategy ssw_strategy{"SSW (34 probes)"};
  Strategy fixed_strategy{"CSS fixed 14"};
  Strategy adaptive_strategy{"CSS adaptive"};
  AdaptiveProbeController controller;
  int fixed_prev = -1;
  int adaptive_prev = -1;

  std::printf("step | head az | SSW sec | CSS14 sec | adaptive sec (probes)\n");
  std::printf("-----+---------+---------+-----------+----------------------\n");
  for (std::size_t step = 0; step < profile.size(); ++step) {
    lab.set_head(profile[step], 0.0);
    // Ground-truth optimum at this pose.
    double best = -1e9;
    for (int id : talon_tx_sector_ids()) {
      best = std::max(best, link.true_snr_db(*lab.dut, id, *lab.peer,
                                             kRxQuasiOmniSectorId));
    }
    const auto true_snr_of = [&](int sector) {
      return link.true_snr_db(*lab.dut, sector, *lab.peer, kRxQuasiOmniSectorId);
    };

    // SSW: full sweep.
    const SweepOutcome full =
        link.transmit_sweep(*lab.dut, *lab.peer, sweep_burst_schedule());
    const SswSelection ssw = sweep_select(full.measurement.readings);
    ssw_strategy.add({best - true_snr_of(ssw.sector_id), kFullSweepProbes}, timing);

    // CSS fixed 14.
    const auto subset14 = policy.choose(talon_tx_sector_ids(), 14, rng);
    const SweepOutcome probe14 =
        link.transmit_sweep(*lab.dut, *lab.peer, probing_burst_schedule(subset14));
    const CssResult r14 = selector.select(probe14.measurement.readings);
    const int sec14 = r14.valid ? r14.sector_id
                     : fixed_prev >= 0 ? fixed_prev
                                       : ssw.sector_id;
    fixed_prev = sec14;
    fixed_strategy.add({best - true_snr_of(sec14), 14}, timing);

    // CSS adaptive.
    const std::size_t m = controller.current_probes();
    const auto subset_a = policy.choose(talon_tx_sector_ids(), m, rng);
    const SweepOutcome probe_a =
        link.transmit_sweep(*lab.dut, *lab.peer, probing_burst_schedule(subset_a));
    const CssResult ra = selector.select(probe_a.measurement.readings);
    const int sec_a = ra.valid ? ra.sector_id
                     : adaptive_prev >= 0 ? adaptive_prev
                                          : ssw.sector_id;
    adaptive_prev = sec_a;
    controller.report_selection(sec_a);
    adaptive_strategy.add({best - true_snr_of(sec_a), static_cast<int>(m)}, timing);

    if (step % 10 == 0) {
      std::printf("%4zu | %6.1f  |   %3d   |    %3d    |   %3d (%zu)\n", step,
                  profile[step], ssw.sector_id, sec14, sec_a, m);
    }
  }

  std::printf("\nstrategy         | mean loss [dB] | training airtime [ms total]\n");
  std::printf("-----------------+----------------+----------------------------\n");
  for (const Strategy* s : {&ssw_strategy, &fixed_strategy, &adaptive_strategy}) {
    std::printf("%-16s |      %5.2f     |        %7.2f\n", s->name.c_str(),
                s->total_loss_db / s->steps, s->total_training_ms);
  }
  std::printf(
      "\nthe adaptive controller hovers at a low probe count while static,\n"
      "ramps to the full sweep during the swing and decays afterwards --\n"
      "tracking accuracy close to SSW at well under half its airtime,\n"
      "without hand-picking M per scenario.\n");
  return 0;
}
