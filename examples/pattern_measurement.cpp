// Example: the Sec. 4 measurement campaign as a standalone workflow.
//
// Runs the anechoic-chamber campaign with the rotation head, post-processes
// the raw sweeps into a 3-D pattern table, prints a per-sector report and
// persists the table as CSV -- then reloads it and verifies the round trip,
// which is exactly how a downstream user would consume the published
// pattern data.
//
// Usage: ./pattern_measurement [output.csv] [--full]

#include <cstdio>
#include <cstring>

#include "src/antenna/codebook.hpp"
#include "src/measure/campaign.hpp"
#include "src/sim/scenario.hpp"

int main(int argc, char** argv) {
  using namespace talon;

  std::string output = "sector_patterns.csv";
  bool full = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--full") == 0) {
      full = true;
    } else {
      output = argv[i];
    }
  }

  Scenario chamber = make_anechoic_scenario(/*seed=*/42);
  CampaignConfig config;
  if (full) {
    config.azimuth = make_axis(-90.0, 90.0, 1.8);     // Sec. 4.5 resolution
    config.elevation = make_axis(0.0, 32.4, 3.6);
    config.repetitions = 3;
  } else {
    config.azimuth = make_axis(-90.0, 90.0, 3.6);
    config.elevation = make_axis(0.0, 32.4, 5.4);
    config.repetitions = 2;
  }

  std::printf("measuring %s-resolution sector patterns at %.1f m in the chamber...\n",
              full ? "paper" : "quick", chamber.distance_m);
  const CampaignResult result = measure_sector_patterns(chamber, config);
  std::printf("  %zu poses, %zu frames decoded, %zu cells gap-interpolated\n\n",
              result.poses_visited, result.frames_decoded, result.interpolated_cells);

  std::printf("sector | peak [dB] | peak az | peak el | in-plane peak [dB]\n");
  std::printf("-------+-----------+---------+---------+-------------------\n");
  for (int id : result.table.ids()) {
    const Grid2D& pattern = result.table.pattern(id);
    const Grid2D::Peak peak = pattern.peak();
    // Best value within the azimuth plane (elevation 0), to spot sectors
    // like 5 whose maximum sits above the plane.
    double in_plane = -100.0;
    for (std::size_t ia = 0; ia < pattern.grid().azimuth.count; ++ia) {
      in_plane = std::max(in_plane, pattern.at(ia, 0));
    }
    if (id == kRxQuasiOmniSectorId) {
      std::printf("  RX   |");
    } else {
      std::printf("%6d |", id);
    }
    std::printf("   %5.2f   | %6.1f  | %6.1f  |    %5.2f%s\n", peak.value,
                peak.direction.azimuth_deg, peak.direction.elevation_deg, in_plane,
                peak.value - in_plane > 2.0 ? "   <- elevated lobe" : "");
  }

  write_csv_file(output, result.table.to_csv());
  std::printf("\npattern table written to %s\n", output.c_str());

  // Round-trip check: a consumer loading the CSV sees identical data.
  const PatternTable reloaded = PatternTable::from_csv(read_csv_file(output));
  std::printf("reloaded %zu sectors on a %zux%zu grid -- round trip ok\n",
              reloaded.size(), reloaded.grid().azimuth.count,
              reloaded.grid().elevation.count);
  return 0;
}
