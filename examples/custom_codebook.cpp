// Example: replacing the codebook -- the deepest level of beam control the
// platform exposes (Sec. 7: "future generations are likely to demand
// higher directivities and more fine-grained beam control. Such
// requirements could be addressed by increasing the number of implemented
// and predefined sectors").
//
// The workflow mirrors what talon-tools enables on real hardware:
//  1. read the stock board-file codebook out of the chip,
//  2. build a denser one (48 directional sectors instead of 34),
//  3. serialize it back into the firmware's board-file region,
//  4. verify the round trip and compare the coverage of the two books.

#include <cstdio>

#include "src/antenna/codebook_io.hpp"
#include "src/antenna/synthesis.hpp"
#include "src/driver/wil6210.hpp"
#include "src/mac/timing.hpp"

int main() {
  using namespace talon;

  const PlanarArrayGeometry geometry = talon_array_geometry();
  FullMacFirmware firmware;
  Wil6210Driver driver(firmware);

  // 1. Stock codebook into the board-file region, then read back.
  const Codebook stock = make_talon_codebook(geometry);
  driver.write_codebook(stock, geometry, 16, 4);
  const ParsedCodebook before = driver.read_codebook();
  std::printf("stock board file: %zu sectors, %dx%d array, %d phase states\n",
              before.codebook.size(), static_cast<int>(before.cols),
              static_cast<int>(before.rows), before.phase_states);

  // 2./3. Flash a denser codebook.
  const Codebook dense = make_dense_codebook(geometry, 48);
  driver.write_codebook(dense, geometry, 4, 1);
  const ParsedCodebook after = driver.read_codebook();
  std::printf("custom board file: %zu sectors\n", after.codebook.size());

  // 4. Coverage comparison: the best-sector gain across the service area
  // (azimuth +-55 deg at elevations 0 and 14 deg -- the dense book adds an
  // elevated layer the stock book mostly lacks).
  const ElementModel element{ElementModelConfig{}};
  const auto coverage = [&](const Codebook& book, double el) {
    double worst = 1e9;
    double sum = 0.0;
    int count = 0;
    for (double az = -55.0; az <= 55.0; az += 1.0) {
      double best = -1e9;
      for (const Sector& s : book.sectors()) {
        if (s.id == kRxQuasiOmniSectorId) continue;
        best = std::max(best, array_gain_dbi(geometry, element, s.weights, {az, el}));
      }
      worst = std::min(worst, best);
      sum += best;
      ++count;
    }
    return std::pair{sum / count, worst};
  };
  std::printf("\nbest-sector gain, mean / worst case over az +-55 deg:\n");
  for (double el : {0.0, 14.0}) {
    const auto [stock_mean, stock_floor] = coverage(before.codebook, el);
    const auto [dense_mean, dense_floor] = coverage(after.codebook, el);
    std::printf("  el %4.1f: stock %.2f / %.2f dBi, dense %.2f / %.2f dBi (%+.2f dB)\n",
                el, stock_mean, stock_floor, dense_mean, dense_floor,
                dense_mean - stock_mean);
  }

  const TimingModel timing;
  std::printf(
      "\nthe stock sweep over 48 sectors would cost %.2f ms per training;\n"
      "compressive selection keeps probing 14 (%.2f ms) regardless of the\n"
      "codebook size -- the Sec. 7 scaling argument this example enables.\n",
      timing.mutual_training_time_ms(48), timing.mutual_training_time_ms(14));
  return 0;
}
