// Example: 802.11ad initial access at scale -- beacons + A-BFT contention.
//
// An AP serves a growing crowd of stations; each beacon interval (102.4 ms)
// it beacons over the Table-1 schedule, and unassociated stations contend
// for the 8 A-BFT slots with their responder sweeps. The report shows how
// slot collisions stretch association latency as the room fills up, the
// operational background of Sec. 4.1.

#include <cmath>
#include <cstdio>
#include <memory>
#include <vector>

#include "src/sim/access.hpp"

namespace {

using namespace talon;

struct World {
  std::unique_ptr<Environment> env = make_anechoic_chamber();
  RadioConfig radio;
  MeasurementModelConfig measurement;
  std::unique_ptr<Node> ap;
  std::vector<std::unique_ptr<Node>> stations;
};

World make_world(std::size_t n) {
  World world;
  NodeConfig ap_config;
  ap_config.id = 0;
  ap_config.device_seed = 1;
  ap_config.pose = EndpointPose{{0.0, 0.0, 2.0}, DeviceOrientation(0.0, 0.0)};
  world.ap = std::make_unique<Node>(ap_config);
  for (std::size_t i = 0; i < n; ++i) {
    const double az = -50.0 + 100.0 * static_cast<double>(i) /
                                  std::max<std::size_t>(n - 1, 1);
    const double dist = 2.5 + 0.15 * static_cast<double>(i % 5);
    NodeConfig config;
    config.id = static_cast<int>(i) + 1;
    config.device_seed = 100 + i;
    config.pose = EndpointPose{
        {dist * std::cos(deg_to_rad(az)), dist * std::sin(deg_to_rad(az)), 1.2},
        DeviceOrientation(wrap_azimuth_deg(az + 180.0), 0.0),
    };
    world.stations.push_back(std::make_unique<Node>(config));
  }
  return world;
}

}  // namespace

int main() {
  using namespace talon;

  std::printf("stations | assoc'd | max intervals | collisions | mean latency [ms]\n");
  std::printf("---------+---------+---------------+------------+------------------\n");
  for (std::size_t n : {1u, 2u, 4u, 8u, 12u, 16u}) {
    World world = make_world(n);
    std::vector<Node*> stations;
    for (auto& s : world.stations) stations.push_back(s.get());
    LinkSimulator link(*world.env, world.radio, world.measurement, Rng(5));
    InitialAccessSimulator access(link, *world.ap, stations, InitialAccessConfig{},
                                  Rng(7 + n));
    const auto outcomes = access.run();

    int associated = 0;
    int max_intervals = 0;
    int collisions = 0;
    double latency_sum = 0.0;
    for (const auto& o : outcomes) {
      if (o.associated) {
        ++associated;
        latency_sum += o.time_ms;
      }
      max_intervals = std::max(max_intervals, o.beacon_intervals);
      collisions += o.collisions;
    }
    std::printf("  %4zu   |  %4d   |     %4d      |    %4d    |      %7.1f\n", n,
                associated, max_intervals, collisions,
                associated > 0 ? latency_sum / associated : 0.0);
  }
  std::printf(
      "\nwith 8 A-BFT slots, small crowds associate in one beacon interval;\n"
      "as contention grows, collisions push stragglers into later intervals\n"
      "(each costing another 102.4 ms).\n");
  return 0;
}
