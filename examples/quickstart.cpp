// Quickstart: the full compressive-sector-selection pipeline in one file.
//
//  1. Measure the device's sector patterns in a simulated anechoic chamber
//     (a coarse, fast version of the Sec. 4 campaign).
//  2. Build a CompressiveSectorSelector from the measured table.
//  3. In the lab scenario, probe a random 14-sector subset, estimate the
//     path direction, and pick the best of all 34 sectors (Eqs. 2-5).
//  4. Compare against the stock full sector sweep and print the training
//     time both need.
//
// Run: ./quickstart [pattern_output.csv]

#include <cstdio>

#include "src/core/css.hpp"
#include "src/core/selector.hpp"
#include "src/core/ssw.hpp"
#include "src/core/subset_policy.hpp"
#include "src/mac/timing.hpp"
#include "src/measure/campaign.hpp"
#include "src/sim/experiment.hpp"

int main(int argc, char** argv) {
  using namespace talon;

  // --- 1. Pattern campaign (coarse grid for speed) -------------------------
  std::printf("== measuring sector patterns in the anechoic chamber ==\n");
  Scenario chamber = make_anechoic_scenario(/*seed=*/42);
  CampaignConfig campaign;
  campaign.azimuth = make_axis(-90.0, 90.0, 3.6);
  campaign.elevation = make_axis(0.0, 32.4, 3.6);
  campaign.repetitions = 2;
  const CampaignResult measured = measure_sector_patterns(chamber, campaign);
  std::printf("  poses: %zu, decoded frames: %zu, interpolated cells: %zu\n",
              measured.poses_visited, measured.frames_decoded,
              measured.interpolated_cells);
  std::printf("  sectors in table: %zu\n", measured.table.size());
  if (argc > 1) {
    write_csv_file(argv[1], measured.table.to_csv());
    std::printf("  pattern table written to %s\n", argv[1]);
  }

  // --- 2. The selector ------------------------------------------------------
  CompressiveSectorSelector css(measured.table);
  CssSelector selector(css);

  // --- 3. One compressive selection in the lab ------------------------------
  std::printf("\n== compressive selection in the lab (head at 20 deg) ==\n");
  Scenario lab = make_lab_scenario(/*seed=*/42);  // same DUT seed: same device
  lab.set_head(20.0, 0.0);
  Rng rng(7);
  LinkSimulator link = lab.make_link(rng.fork());

  RandomSubsetPolicy policy;
  const std::vector<int> subset = policy.choose(talon_tx_sector_ids(), 14, rng);
  const auto schedule = probing_burst_schedule(subset);
  const SweepOutcome probe_sweep =
      link.transmit_sweep(*lab.dut, *lab.peer, schedule);
  std::printf("  probed %d sectors, %zu frames decoded\n",
              probe_sweep.transmitted_frames, probe_sweep.measurement.readings.size());

  const CssResult result = selector.select(probe_sweep.measurement.readings);
  const Direction truth = lab.nominal_peer_direction();
  if (result.valid && result.estimated_direction) {
    std::printf("  estimated path: az %.1f deg, el %.1f deg (truth: %.1f, %.1f)\n",
                result.estimated_direction->azimuth_deg,
                result.estimated_direction->elevation_deg, truth.azimuth_deg,
                truth.elevation_deg);
  }
  std::printf("  CSS selects sector %d (correlation peak %.3f)\n", result.sector_id,
              result.correlation_peak);

  // --- 4. Baseline: the stock full sweep ------------------------------------
  const SweepOutcome full_sweep =
      link.transmit_sweep(*lab.dut, *lab.peer, sweep_burst_schedule());
  const SswSelection ssw = sweep_select(full_sweep.measurement.readings);
  std::printf("  full sweep (SSW) selects sector %d at %.2f dB\n", ssw.sector_id,
              ssw.snr_db);

  const double css_true = link.true_snr_db(*lab.dut, result.sector_id, *lab.peer,
                                           kRxQuasiOmniSectorId);
  const double ssw_true =
      link.true_snr_db(*lab.dut, ssw.sector_id, *lab.peer, kRxQuasiOmniSectorId);
  std::printf("  true link SNR: CSS %.2f dB vs SSW %.2f dB\n", css_true, ssw_true);

  const TimingModel timing;
  std::printf("\n== training time ==\n");
  std::printf("  CSS (14 probes): %.2f ms, SSW (34 probes): %.2f ms -> %.1fx faster\n",
              timing.mutual_training_time_ms(14),
              timing.mutual_training_time_ms(kFullSweepProbes),
              timing.speedup_vs_full_sweep(14));
  return 0;
}
