// Example: turning the stock QCA9500 firmware into a research platform
// (the Sec. 3 workflow, step by step).
//
//  1. The stock firmware is a black box: the research WMI commands report
//     "unsupported", and the ARC600 code partitions reject writes at their
//     low addresses.
//  2. The high-address mirror is writable -- the discovery enabling
//     Nexmon-style patching on this chip -- so the two research patches
//     (sweep-info ring buffer, sector override) apply there.
//  3. With the patches live, a sweep's per-sector SNR/RSSI can be read from
//     user space and the feedback sector can be forced, which is then
//     visible in the SSW feedback of the next training round.

#include <cstdio>

#include "src/common/error.hpp"
#include "src/core/ssw.hpp"
#include "src/sim/scenario.hpp"

int main() {
  using namespace talon;

  Scenario lab = make_lab_scenario(/*seed=*/42);
  lab.set_head(-25.0, 0.0);
  LinkSimulator link = lab.make_link(Rng(9));
  FullMacFirmware& fw = lab.peer->firmware();

  std::printf("== 1. stock firmware is a black box ==\n");
  const WmiResponse version = fw.handle_wmi({.type = WmiCommandType::kGetFirmwareVersion});
  std::printf("firmware version: %s\n", version.firmware_version.c_str());
  std::printf("ReadSweepInfo  -> %s\n",
              to_string(fw.handle_wmi({.type = WmiCommandType::kReadSweepInfo}).status)
                  .c_str());
  std::printf("SetSectorOverride -> %s\n",
              to_string(fw.handle_wmi({.type = WmiCommandType::kSetSectorOverride,
                                       .sector_id = 7})
                            .status)
                  .c_str());

  std::printf("\n== 2. ARC600 memory protection and the high mirror ==\n");
  try {
    fw.memory().write(ChipProcessor::kUcode, 0x1000, 0x42);
  } catch (const StateError& e) {
    std::printf("low-address code write rejected: %s\n", e.what());
  }
  fw.memory().host_write(kUcCodeHostBase + 0x1000, 0x42);
  std::printf("same byte via the writable high mirror: ok, ucode now reads 0x%02x\n",
              fw.memory().read(ChipProcessor::kUcode, 0x1000));

  std::printf("\napplying research patches...\n");
  fw.apply_research_patches();
  for (const std::string& name : fw.patcher().applied_patches()) {
    std::printf("  applied: %s\n", name.c_str());
  }

  std::printf("\n== 3. sweep info from user space ==\n");
  link.transmit_sweep(*lab.dut, *lab.peer, sweep_burst_schedule());
  WmiResponse info = fw.handle_wmi({.type = WmiCommandType::kReadSweepInfo});
  std::printf("ring buffer returned %zu readings:\n", info.entries.size());
  for (std::size_t i = 0; i < info.entries.size(); i += 6) {
    const SweepInfoEntry& e = info.entries[i];
    std::printf("  sector %2d: snr %6.2f dB, rssi %7.2f\n", e.sector_id, e.snr_db,
                e.rssi_dbm);
  }

  std::printf("\n== 4. forcing a custom sector ==\n");
  const SweepOutcome stock = link.transmit_sweep(*lab.dut, *lab.peer,
                                                 sweep_burst_schedule());
  std::printf("stock feedback selects sector %d\n", stock.feedback.selected_sector_id);
  fw.handle_wmi({.type = WmiCommandType::kSetSectorOverride, .sector_id = 27});
  const SweepOutcome forced = link.transmit_sweep(*lab.dut, *lab.peer,
                                                  sweep_burst_schedule());
  std::printf("with override, feedback selects sector %d\n",
              forced.feedback.selected_sector_id);
  fw.handle_wmi({.type = WmiCommandType::kClearSectorOverride});
  const SweepOutcome restored = link.transmit_sweep(*lab.dut, *lab.peer,
                                                    sweep_burst_schedule());
  std::printf("override cleared, feedback selects sector %d again\n",
              restored.feedback.selected_sector_id);
  return 0;
}
