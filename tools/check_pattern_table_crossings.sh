#!/usr/bin/env bash
# Audit: PatternTable must not cross API boundaries by value.
#
# A measured table is ~100k doubles; a by-value parameter copies all of it
# at every call. The only allowed by-value sinks are the two that MOVE
# their parameter into the shared immutable assets:
#   - PatternAssets::PatternAssets        (src/core/pattern_assets.hpp)
#   - CompressiveSectorSelector legacy ctor (src/core/css.hpp) -- moves
#     into PatternAssetsRegistry::get_or_create(PatternTable&&)
# Everything else must take const PatternTable& (copy only on a registry
# miss) or PatternTable&&.
set -euo pipefail
cd "$(dirname "$0")/.."

violations=$(grep -rnE --include='*.hpp' --include='*.cpp' \
  '(\(|, ?)PatternTable [A-Za-z_]' src tools examples bench tests \
  | grep -vE 'const PatternTable' \
  | grep -vE 'src/core/pattern_assets\.(hpp|cpp)' \
  | grep -vE 'src/core/css\.(hpp|cpp)' || true)

if [ -n "${violations}" ]; then
  echo "by-value PatternTable crossing(s) found (take const PatternTable& or move):"
  echo "${violations}"
  exit 1
fi
echo "OK: no by-value PatternTable crossings outside the whitelisted move sinks."
