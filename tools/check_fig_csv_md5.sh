#!/usr/bin/env bash
# Audit: the paper-figure CSVs are bit-frozen.
#
# Every kernel/selection change must leave fig 7/8/9/11 byte-identical --
# the selection pipeline promises bit-identical results across refactors,
# thread counts and the branch-and-bound argmax (it may only skip work,
# never change arithmetic). This regenerates the CSVs at several thread
# counts and checks them against the committed md5 manifest. If a change
# is *supposed* to alter the figures (a modelling change, not a kernel
# change), regenerate the manifest in the same commit and say so:
#   cd <fresh dir> && <build>/bench/bench_fig{7,8,9,11} --threads 1
#   md5sum *.csv | sort -k2 > tools/fig_csv_md5.manifest
#
# Usage: tools/check_fig_csv_md5.sh [build_dir] [threads...]
#   build_dir defaults to ./build, threads default to "1 2 7".
set -euo pipefail
cd "$(dirname "$0")/.."

build_dir="${1:-build}"
shift $(( $# > 0 ? 1 : 0 ))
threads=("$@")
[ ${#threads[@]} -gt 0 ] || threads=(1 2 7)

manifest="$(pwd)/tools/fig_csv_md5.manifest"
[ -f "${manifest}" ] || { echo "missing ${manifest}" >&2; exit 1; }

for fig in 7 8 9 11; do
  bin="${build_dir}/bench/bench_fig${fig}"
  [ -x "${bin}" ] || { echo "missing ${bin} (build the bench targets first)" >&2; exit 1; }
done
# Resolve the binaries before we cd into scratch dirs.
build_abs="$(cd "${build_dir}" && pwd)"

scratch="$(mktemp -d)"
trap 'rm -rf "${scratch}"' EXIT

status=0
for t in "${threads[@]}"; do
  dir="${scratch}/t${t}"
  mkdir -p "${dir}"
  if ( cd "${dir}"
       for fig in 7 8 9 11; do
         "${build_abs}/bench/bench_fig${fig}" --threads "${t}" > /dev/null
       done
       md5sum -c "${manifest}" > /dev/null ); then
    echo "OK: fig 7/8/9/11 CSVs match the manifest at --threads ${t}"
  else
    echo "FAIL: figure CSVs diverge from tools/fig_csv_md5.manifest at --threads ${t}:"
    ( cd "${dir}" && md5sum -c "${manifest}" 2>&1 | grep -v ': OK$' ) || true
    status=1
  fi
done
exit "${status}"
