// talon-cli: the command-line face of the library, mirroring how the
// talon-tools release is driven from the shell.
//
//   talon-cli measure   [--output patterns.csv] [--full] [--seed N]
//   talon-cli summary   <patterns.csv>
//   talon-cli train     [--env lab|conference|anechoic] [--head DEG]
//                       [--probes M] [--patterns patterns.csv] [--seed N]
//   talon-cli record    [--env lab|conference] [--output records.csv]
//                       [--sweeps N] [--az-step DEG] [--seed N]
//   talon-cli analyze   <error|quality> --records records.csv
//                       [--patterns patterns.csv] [--probes M]
//   talon-cli dense     [--links K] [--rounds N] [--rate TRAININGS_PER_S]
//                       [--probes M] [--patterns patterns.csv] [--seed N]
//   talon-cli mesh      [--aps K] [--stas N] [--channels C] [--seconds S]
//                       [--rate TRAININGS_PER_S] [--churn P] [--seed N]
//   talon-cli serve     [--links K] [--rounds N] [--probes M] [--queue CAP]
//                       [--patterns patterns.csv] [--swap]
//                       [--snapshot out.bin] [--restore in.bin] [--seed N]
//   talon-cli table1
//   talon-cli timing    [--probes M]
//
// `measure` runs the anechoic campaign and writes the pattern CSV;
// `summary` inspects a pattern file; `train` runs one compressive
// selection round in a venue (measuring patterns on the fly when no file
// is given); `record`/`analyze` split data collection from offline
// analysis like the paper's router-plus-MATLAB workflow; `dense` runs the
// multi-link NetworkSimulator (K pairs training under contention on one
// shared channel); `mesh` runs the city-scale controller/minion
// MeshSimulator and prints the network-wide lifecycle ledger; `serve`
// runs the asynchronous ServeDaemon (MPSC ingest + worker fan-out) over
// K headless links, optionally hot-swapping a recalibrated table
// mid-stream and snapshotting/restoring session state, then prints the
// telemetry scrape; `table1` and `timing` print the protocol constants.

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "src/common/args.hpp"
#include "src/common/error.hpp"
#include "src/core/css.hpp"
#include "src/core/selector.hpp"
#include "src/core/ssw.hpp"
#include "src/core/subset_policy.hpp"
#include "src/driver/serve.hpp"
#include "src/driver/snapshot.hpp"
#include "src/mac/monitor.hpp"
#include "src/mac/timing.hpp"
#include "src/measure/campaign.hpp"
#include "src/sim/mesh.hpp"
#include "src/sim/network.hpp"
#include "src/sim/records_io.hpp"
#include "src/sim/scenario.hpp"

namespace {

using namespace talon;

void print_usage() {
  std::printf(
      "usage: talon-cli <command> [options]\n"
      "  measure  [--output patterns.csv] [--full] [--seed N]\n"
      "  summary  <patterns.csv>\n"
      "  train    [--env lab|conference|anechoic] [--head DEG] [--probes M]\n"
      "           [--patterns patterns.csv] [--seed N]\n"
      "  record   [--env lab|conference] [--output records.csv] [--sweeps N]\n"
      "           [--az-step DEG] [--seed N]\n"
      "  analyze  <error|quality> --records records.csv\n"
      "           [--patterns patterns.csv] [--probes M] [--seed N]\n"
      "  dense    [--links K] [--rounds N] [--rate TRAININGS_PER_S]\n"
      "           [--probes M] [--patterns patterns.csv] [--seed N]\n"
      "  mesh     [--aps K] [--stas N] [--channels C] [--seconds S]\n"
      "           [--rate TRAININGS_PER_S] [--churn P] [--seed N]\n"
      "  serve    [--links K] [--rounds N] [--probes M] [--queue CAP]\n"
      "           [--patterns patterns.csv] [--swap] [--snapshot out.bin]\n"
      "           [--restore in.bin] [--seed N]\n"
      "  table1\n"
      "  timing   [--probes M]\n"
      "all commands accept --threads N (default: hardware concurrency,\n"
      "TALON_THREADS overrides) for the parallel replay engine\n");
}

PatternTable measure_patterns(std::uint64_t seed, bool full) {
  Scenario chamber = make_anechoic_scenario(seed);
  CampaignConfig config;
  if (full) {
    config.azimuth = make_axis(-90.0, 90.0, 1.8);
    config.elevation = make_axis(0.0, 32.4, 3.6);
    config.repetitions = 3;
  } else {
    config.azimuth = make_axis(-90.0, 90.0, 3.6);
    config.elevation = make_axis(0.0, 32.4, 5.4);
    config.repetitions = 2;
  }
  return measure_sector_patterns(chamber, config).table;
}

int cmd_measure(const ArgParser& args) {
  const std::string output = args.option_or("--output", "patterns.csv");
  const auto seed = static_cast<std::uint64_t>(args.integer_or("--seed", 42));
  const PatternTable table = measure_patterns(seed, args.has_flag("--full"));
  write_csv_file(output, table.to_csv());
  std::printf("measured %zu sectors on a %zux%zu grid -> %s\n", table.size(),
              table.grid().azimuth.count, table.grid().elevation.count,
              output.c_str());
  return 0;
}

int cmd_summary(const ArgParser& args) {
  if (args.positionals().size() < 2) {
    std::fprintf(stderr, "summary: missing <patterns.csv>\n");
    return 2;
  }
  const PatternTable table =
      PatternTable::from_csv(read_csv_file(args.positionals()[1]));
  std::printf("%zu sectors, azimuth %zu x elevation %zu grid\n", table.size(),
              table.grid().azimuth.count, table.grid().elevation.count);
  std::printf("sector | peak [dB] | peak az | peak el\n");
  for (int id : table.ids()) {
    const auto peak = table.pattern(id).peak();
    std::printf("%6d |  %6.2f   | %6.1f  | %6.1f\n", id, peak.value,
                peak.direction.azimuth_deg, peak.direction.elevation_deg);
  }
  return 0;
}

int cmd_train(const ArgParser& args) {
  const std::string env = args.option_or("--env", "lab");
  const auto seed = static_cast<std::uint64_t>(args.integer_or("--seed", 42));
  const double head = args.number_or("--head", 20.0);
  const auto probes = static_cast<std::size_t>(args.integer_or("--probes", 14));

  Scenario scenario = env == "conference"  ? make_conference_scenario(seed)
                      : env == "anechoic" ? make_anechoic_scenario(seed)
                                          : make_lab_scenario(seed);
  scenario.set_head(head, 0.0);

  PatternTable table;
  if (const auto path = args.option("--patterns")) {
    table = PatternTable::from_csv(read_csv_file(*path));
  } else {
    std::printf("no --patterns file: measuring (quick campaign)...\n");
    table = measure_patterns(seed, false);
  }
  const CompressiveSectorSelector css(table);
  CssSelector selector(css);

  LinkSimulator link = scenario.make_link(Rng(seed + 1));
  RandomSubsetPolicy policy;
  Rng rng(seed + 2);
  const auto subset = policy.choose(talon_tx_sector_ids(), probes, rng);
  const SweepOutcome sweep = link.transmit_sweep(*scenario.dut, *scenario.peer,
                                                 probing_burst_schedule(subset));
  const CssResult result = selector.select(sweep.measurement.readings);
  const SweepOutcome full = link.transmit_sweep(*scenario.dut, *scenario.peer,
                                                sweep_burst_schedule());
  const SswSelection ssw = sweep_select(full.measurement.readings);

  std::printf("venue %s, head %.1f deg, %zu probes (%zu decoded)\n", env.c_str(), head,
              probes, sweep.measurement.readings.size());
  if (result.valid && result.estimated_direction) {
    std::printf("CSS: sector %d, estimated path az %.1f el %.1f (peak %.3f)\n",
                result.sector_id, result.estimated_direction->azimuth_deg,
                result.estimated_direction->elevation_deg, result.correlation_peak);
  } else {
    std::printf("CSS: no valid selection this round\n");
  }
  std::printf("SSW: sector %d at %.2f dB reported\n", ssw.sector_id, ssw.snr_db);
  const double css_true = link.true_snr_db(*scenario.dut, result.sector_id,
                                           *scenario.peer, kRxQuasiOmniSectorId);
  const double ssw_true = link.true_snr_db(*scenario.dut, ssw.sector_id,
                                           *scenario.peer, kRxQuasiOmniSectorId);
  std::printf("true SNR: CSS %.2f dB, SSW %.2f dB\n", css_true, ssw_true);
  return 0;
}

int cmd_record(const ArgParser& args) {
  const std::string env = args.option_or("--env", "conference");
  const std::string output = args.option_or("--output", "records.csv");
  const auto seed = static_cast<std::uint64_t>(args.integer_or("--seed", 42));
  Scenario scenario =
      env == "lab" ? make_lab_scenario(seed) : make_conference_scenario(seed);

  RecordingConfig config;
  const double az_step = args.number_or("--az-step", 5.0);
  for (double az = -60.0; az <= 60.0 + 1e-9; az += az_step) {
    config.head_azimuths_deg.push_back(az);
  }
  config.head_tilts_deg = {0.0};
  config.sweeps_per_pose = static_cast<std::size_t>(args.integer_or("--sweeps", 10));
  config.seed = seed + 100;
  const auto records = record_sweeps(scenario, config);
  write_csv_file(output, records_to_csv(records));
  std::printf("recorded %zu sweeps over %zu poses in the %s -> %s\n", records.size(),
              records.size() / config.sweeps_per_pose, env.c_str(), output.c_str());
  return 0;
}

int cmd_analyze(const ArgParser& args) {
  if (args.positionals().size() < 2) {
    std::fprintf(stderr, "analyze: missing <error|quality>\n");
    return 2;
  }
  const std::string what = args.positionals()[1];
  const auto records_path = args.option("--records");
  if (!records_path) {
    std::fprintf(stderr, "analyze: --records is required\n");
    return 2;
  }
  const auto records = records_from_csv(read_csv_file(*records_path));
  const auto seed = static_cast<std::uint64_t>(args.integer_or("--seed", 42));

  PatternTable table;
  if (const auto path = args.option("--patterns")) {
    table = PatternTable::from_csv(read_csv_file(*path));
  } else {
    std::printf("no --patterns file: measuring (quick campaign)...\n");
    table = measure_patterns(seed, false);
  }
  const CompressiveSectorSelector css(table);
  CssSelector selector(css);
  RandomSubsetPolicy policy;
  const std::vector<std::size_t> probes{
      static_cast<std::size_t>(args.integer_or("--probes", 14))};

  if (what == "error") {
    const auto rows = estimation_error_analysis(records, selector, probes, policy, seed);
    std::printf("probes | az median | az p99.5 | el median | el p99.5 | samples\n");
    for (const auto& row : rows) {
      std::printf("%6zu |  %6.2f   |  %6.2f  |  %6.2f   |  %6.2f  | %6zu\n",
                  row.probes, row.azimuth_error.median,
                  row.azimuth_error.whisker_high, row.elevation_error.median,
                  row.elevation_error.whisker_high, row.samples);
    }
    return 0;
  }
  if (what == "quality") {
    const auto rows = selection_quality_analysis(records, selector, probes, policy, seed);
    std::printf("probes | CSS stability | SSW stability | CSS loss | SSW loss\n");
    for (const auto& row : rows) {
      std::printf("%6zu |     %.3f     |     %.3f     |  %5.2f   |  %5.2f\n",
                  row.probes, row.css_stability, row.ssw_stability,
                  row.css_snr_loss_db, row.ssw_snr_loss_db);
    }
    return 0;
  }
  std::fprintf(stderr, "analyze: unknown analysis '%s'\n", what.c_str());
  return 2;
}

int cmd_dense(const ArgParser& args) {
  const auto seed = static_cast<std::uint64_t>(args.integer_or("--seed", 42));
  const long links_arg = args.integer_or("--links", 4);
  const long rounds_arg = args.integer_or("--rounds", 10);
  const double rate = args.number_or("--rate", 10.0);
  const auto probes = static_cast<std::size_t>(args.integer_or("--probes", 14));

  // Validate before the (slow) pattern campaign, so a typo'd flag fails
  // in milliseconds with a message instead of a precondition abort later
  // (and a negative --rounds never wraps through the size_t cast).
  if (links_arg <= 0) {
    std::fprintf(stderr, "dense: --links must be positive (got %ld)\n",
                 links_arg);
    return 2;
  }
  if (rounds_arg <= 0) {
    std::fprintf(stderr, "dense: --rounds must be positive (got %ld)\n",
                 rounds_arg);
    return 2;
  }
  if (rate <= 0.0) {
    std::fprintf(stderr,
                 "dense: --rate (trainings per second) must be positive "
                 "(got %g)\n",
                 rate);
    return 2;
  }
  const int links = static_cast<int>(links_arg);
  const auto rounds = static_cast<std::size_t>(rounds_arg);

  PatternTable table;
  if (const auto path = args.option("--patterns")) {
    table = PatternTable::from_csv(read_csv_file(*path));
  } else {
    std::printf("no --patterns file: measuring (quick campaign)...\n");
    table = measure_patterns(seed, false);
  }
  const CssConfig defaults;
  const auto assets = PatternAssetsRegistry::global().get_or_create(
      std::move(table), defaults.search_grid, defaults.domain);

  NetworkConfig config;
  config.links = links;
  config.rounds = rounds;
  config.trainings_per_second = rate;
  config.session.probes = probes;
  config.seed = seed;
  const auto room = make_conference_room();
  NetworkSimulator sim(config, *room, assets);
  const NetworkRunResult result = sim.run();

  std::printf("%d pairs, %zu rounds, %.1f trainings/s per pair, %zu probes\n\n",
              links, rounds, rate, probes);
  std::printf("round | busy [ms] | deferred | worst defer [ms] | selections\n");
  std::printf("------+-----------+----------+------------------+-----------\n");
  for (std::size_t r = 0; r < result.rounds.size(); ++r) {
    const NetworkRound& round = result.rounds[r];
    int selections = 0;
    for (const LinkRoundOutcome& link : round.links) selections += link.selected;
    std::printf("%5zu | %9.3f | %8d | %16.3f | %6d/%zu\n", r,
                round.busy_time_s * 1000.0, round.deferred, round.worst_defer_ms,
                selections, round.links.size());
  }
  std::printf("\ntraining airtime %.2f%% of the channel, %d/%d trainings deferred "
              "(worst %.2f ms)\n",
              result.training_airtime_share * 100.0, result.deferred_trainings,
              result.total_trainings, result.worst_defer_ms);
  std::printf("mean selected true SNR %.2f dB -> %.1f Mbps goodput per link\n",
              result.mean_selected_snr_db, result.goodput_per_link_mbps);
  return 0;
}

int cmd_mesh(const ArgParser& args) {
  const auto seed = static_cast<std::uint64_t>(args.integer_or("--seed", 42));
  const long aps_arg = args.integer_or("--aps", 64);
  const long stas_arg = args.integer_or("--stas", 4);
  const long channels_arg = args.integer_or("--channels", 8);
  const double seconds = args.number_or("--seconds", 5.0);
  const double rate = args.number_or("--rate", 10.0);
  const double churn = args.number_or("--churn", 0.002);
  const auto probes = static_cast<std::size_t>(args.integer_or("--probes", 14));

  // Validate like `dense`: fail in milliseconds on stderr instead of a
  // precondition abort from deep inside the simulator (and never wrap a
  // negative count through a cast).
  if (aps_arg <= 0) {
    std::fprintf(stderr, "mesh: --aps must be positive (got %ld)\n", aps_arg);
    return 2;
  }
  if (stas_arg <= 0) {
    std::fprintf(stderr, "mesh: --stas (links per AP) must be positive (got %ld)\n",
                 stas_arg);
    return 2;
  }
  if (channels_arg <= 0) {
    std::fprintf(stderr, "mesh: --channels must be positive (got %ld)\n",
                 channels_arg);
    return 2;
  }
  if (seconds <= 0.0) {
    std::fprintf(stderr, "mesh: --seconds must be positive (got %g)\n", seconds);
    return 2;
  }
  if (rate <= 0.0) {
    std::fprintf(stderr,
                 "mesh: --rate (trainings per second) must be positive (got %g)\n",
                 rate);
    return 2;
  }
  if (churn < 0.0 || churn > 1.0) {
    std::fprintf(stderr,
                 "mesh: --churn must be a probability in [0, 1] (got %g)\n",
                 churn);
    return 2;
  }

  MeshConfig config;
  config.aps = static_cast<int>(aps_arg);
  config.stas_per_ap = static_cast<int>(stas_arg);
  config.channels = static_cast<int>(channels_arg);
  config.simulated_seconds = seconds;
  config.trainings_per_second = rate;
  config.churn_probability = churn;
  config.probes = probes;
  config.seed = seed;
  MeshSimulator sim(config);
  const MeshRunResult result = sim.run();

  std::printf("%d APs x %d STAs = %d links on %d channels, %.1f s simulated\n\n",
              config.aps, config.stas_per_ap, sim.link_count(), config.channels,
              result.simulated_s);
  std::printf("ignition: %zu/%d links up (mean %.3f s, worst %.3f s), "
              "%llu re-associations\n",
              result.ignited, sim.link_count(), result.mean_ignition_s,
              result.max_ignition_s,
              static_cast<unsigned long long>(result.reassociations));
  std::printf("training: %llu total, %llu deferred (worst %.2f ms)\n",
              static_cast<unsigned long long>(result.total_trainings),
              static_cast<unsigned long long>(result.deferred_trainings),
              result.worst_defer_ms);
  std::printf("mean link SNR %.2f dB -> aggregate goodput %.2f Gbps\n\n",
              result.mean_snr_db, result.aggregate_goodput_mbps / 1000.0);

  const LifecycleStats& lc = result.lifecycle_totals;
  std::printf("lifecycle ledger (all links):\n");
  std::printf("  transitions: %llu ignitions, %llu acquisitions, %llu drops, "
              "%llu trips, %llu recoveries\n",
              static_cast<unsigned long long>(lc.ignitions),
              static_cast<unsigned long long>(lc.acquisitions),
              static_cast<unsigned long long>(lc.drops),
              static_cast<unsigned long long>(lc.trips),
              static_cast<unsigned long long>(lc.recoveries));
  const double total_time = lc.up_time + lc.unstable_time +
                            lc.acquisition_time + lc.down_time;
  if (total_time > 0.0) {
    std::printf("  time in state: up %.1f%%, unstable %.1f%%, "
                "acquisition %.1f%%, down %.1f%%\n",
                100.0 * lc.up_time / total_time,
                100.0 * lc.unstable_time / total_time,
                100.0 * lc.acquisition_time / total_time,
                100.0 * lc.down_time / total_time);
  }
  return 0;
}

int cmd_serve(const ArgParser& args) {
  const auto seed = static_cast<std::uint64_t>(args.integer_or("--seed", 42));
  const long links_arg = args.integer_or("--links", 8);
  const long rounds_arg = args.integer_or("--rounds", 20);
  const long queue_arg = args.integer_or("--queue", 4096);
  const auto probes = static_cast<std::size_t>(args.integer_or("--probes", 14));

  // Validate like `dense`/`mesh`: fail on stderr in milliseconds before
  // the (slow) pattern campaign or a precondition abort deep inside.
  if (links_arg <= 0) {
    std::fprintf(stderr, "serve: --links must be positive (got %ld)\n",
                 links_arg);
    return 2;
  }
  if (rounds_arg <= 0) {
    std::fprintf(stderr, "serve: --rounds must be positive (got %ld)\n",
                 rounds_arg);
    return 2;
  }
  if (queue_arg <= 0) {
    std::fprintf(stderr, "serve: --queue must be positive (got %ld)\n",
                 queue_arg);
    return 2;
  }
  const int links = static_cast<int>(links_arg);
  const auto rounds = static_cast<std::uint64_t>(rounds_arg);

  PatternTable table;
  if (const auto path = args.option("--patterns")) {
    table = PatternTable::from_csv(read_csv_file(*path));
  } else {
    std::printf("no --patterns file: measuring (quick campaign)...\n");
    table = measure_patterns(seed, false);
  }
  if (probes > table.size()) {
    std::fprintf(stderr, "serve: --probes %zu exceeds the %zu-sector table\n",
                 probes, table.size());
    return 2;
  }
  const CssConfig defaults;
  const auto assets = PatternAssetsRegistry::global().get_or_create(
      std::move(table), defaults.search_grid, defaults.domain);

  CssDaemonConfig session;
  session.probes = probes;
  session.degradation.enabled = true;
  ServeConfig serve_config;
  serve_config.queue_capacity = static_cast<std::size_t>(queue_arg);
  ServeDaemon serve(assets, session, serve_config);
  for (int id = 0; id < links; ++id) {
    serve.add_link(id, Rng(substream_seed(seed, streams::kNetworkSession,
                                          static_cast<std::uint64_t>(id))));
  }
  if (const auto path = args.option("--restore")) {
    std::ifstream in(*path, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "serve: cannot read snapshot '%s'\n", path->c_str());
      return 2;
    }
    const std::vector<std::uint8_t> bytes(
        (std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
    restore_sessions(serve.daemon(), bytes);
    std::printf("restored %d sessions from %s\n", links, path->c_str());
  }

  // Deterministic report stream: the same substreams the serve tests and
  // bench_serve draw from, so a run is reproducible from its seed.
  const PatternTable& patterns = assets->patterns();
  const std::vector<int> ids = patterns.ids();
  auto make_report = [&](int link, std::uint64_t round) {
    Rng rng(substream_seed(seed, streams::kServeReport,
                           static_cast<std::uint64_t>(link), round));
    const std::vector<int> picks =
        rng.sample_without_replacement(static_cast<int>(ids.size()),
                                       static_cast<int>(probes));
    const Direction truth{rng.uniform(-55.0, 55.0), rng.uniform(0.0, 26.0)};
    std::vector<SectorReading> readings;
    readings.reserve(picks.size());
    for (int i : picks) {
      const int id = ids[static_cast<std::size_t>(i)];
      const double v = patterns.sample_db(id, truth) + rng.normal(0.3);
      readings.push_back(SectorReading{.sector_id = id, .snr_db = v, .rssi_dbm = v});
    }
    return readings;
  };

  serve.start();
  for (std::uint64_t r = 0; r < rounds; ++r) {
    if (args.has_flag("--swap") && r == rounds / 2) {
      // Recalibrated codebook (per-sector tilt) published mid-stream;
      // sessions rebind lazily, nothing drops.
      PatternTable warped;
      for (int id : patterns.ids()) {
        Grid2D pattern = patterns.pattern(id);
        for (double& v : pattern.values()) v += 0.5 * id / 32.0;
        warped.add(id, std::move(pattern));
      }
      serve.swap_assets(PatternAssetsRegistry::global().get_or_create(
          std::move(warped), defaults.search_grid, defaults.domain));
      std::printf("hot-swapped assets at round %llu (epoch %llu)\n",
                  static_cast<unsigned long long>(r),
                  static_cast<unsigned long long>(serve.assets_epoch()));
    }
    for (int id = 0; id < links; ++id) serve.submit(id, make_report(id, r));
  }
  serve.stop();
  serve.drain_all();

  std::printf("\n%d links x %llu rounds: %llu submitted, %llu processed, "
              "%llu rejected, %llu rebinds\n\n",
              links, static_cast<unsigned long long>(rounds),
              static_cast<unsigned long long>(serve.submitted()),
              static_cast<unsigned long long>(serve.processed()),
              static_cast<unsigned long long>(serve.rejected()),
              static_cast<unsigned long long>(serve.rebinds()));
  std::printf("%s", serve.scrape().c_str());

  if (const auto path = args.option("--snapshot")) {
    const std::vector<std::uint8_t> bytes = snapshot_sessions(serve.daemon());
    std::ofstream out(*path, std::ios::binary);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    if (!out) {
      std::fprintf(stderr, "serve: cannot write snapshot '%s'\n", path->c_str());
      return 2;
    }
    std::printf("\nsnapshot: %zu bytes -> %s\n", bytes.size(), path->c_str());
  }
  return 0;
}

int cmd_table1() {
  Scenario s = make_anechoic_scenario(42);
  LinkSimulator link = s.make_link(Rng(1));
  MonitorCapture monitor;
  link.transmit_beacons(*s.dut, &monitor);
  link.transmit_sweep(*s.dut, *s.peer, sweep_burst_schedule(), &monitor);
  for (const FrameType type : {FrameType::kBeacon, FrameType::kSectorSweep}) {
    std::printf("%-7s", type == FrameType::kBeacon ? "Beacon" : "Sweep");
    const auto observed = monitor.cdown_to_sectors(type);
    for (int cdown = 34; cdown >= 0; --cdown) {
      const auto it = observed.find(cdown);
      if (it == observed.end()) {
        std::printf(" %3s", "-");
      } else {
        std::printf(" %3d", *it->second.begin());
      }
    }
    std::printf("\n");
  }
  return 0;
}

int cmd_timing(const ArgParser& args) {
  const auto probes = static_cast<int>(args.integer_or("--probes", 14));
  const TimingModel timing;
  std::printf("mutual training with %d probes: %.3f ms (full sweep %.3f ms, %.2fx)\n",
              probes, timing.mutual_training_time_ms(probes),
              timing.mutual_training_time_ms(kFullSweepProbes),
              timing.speedup_vs_full_sweep(probes));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    print_usage();
    return 2;
  }
  ArgParser args;
  args.add_option("--output");
  args.add_option("--seed");
  args.add_option("--env");
  args.add_option("--head");
  args.add_option("--probes");
  args.add_option("--patterns");
  args.add_option("--records");
  args.add_option("--sweeps");
  args.add_option("--az-step");
  args.add_option("--links");
  args.add_option("--rounds");
  args.add_option("--rate");
  args.add_option("--aps");
  args.add_option("--stas");
  args.add_option("--channels");
  args.add_option("--seconds");
  args.add_option("--churn");
  args.add_option("--queue");
  args.add_option("--snapshot");
  args.add_option("--restore");
  args.add_option("--threads");
  args.add_flag("--full");
  args.add_flag("--swap");
  try {
    args.parse(argc - 1, argv + 1);
    const int threads = apply_thread_count_option(args);
    std::printf("threads: %d\n", threads);
    const std::string command = args.positionals().empty() ? "" : args.positionals()[0];
    if (command == "measure") return cmd_measure(args);
    if (command == "summary") return cmd_summary(args);
    if (command == "train") return cmd_train(args);
    if (command == "record") return cmd_record(args);
    if (command == "analyze") return cmd_analyze(args);
    if (command == "dense") return cmd_dense(args);
    if (command == "mesh") return cmd_mesh(args);
    if (command == "serve") return cmd_serve(args);
    if (command == "table1") return cmd_table1();
    if (command == "timing") return cmd_timing(args);
    print_usage();
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "talon-cli: %s\n", e.what());
    return 1;
  }
}
